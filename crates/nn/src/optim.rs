//! First-order optimizers operating on any [`Layer`]'s parameters.
//!
//! The optimizer keeps its per-parameter state (Adam moments) in the order the
//! layer visits its parameters, so the same layer instance must be used for
//! every step.

use crate::param::Layer;

/// Gradient clipping configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GradClip {
    /// No clipping.
    None,
    /// Clip each element to `[-v, v]`.
    Value(f32),
}

/// Adam optimizer (Kingma & Ba) with optional per-element gradient clipping.
///
/// The first and second moments live in two **flat** buffers (one `f32` per
/// trainable scalar, in parameter-visitation order) with a per-parameter
/// offset table, instead of one heap vector per parameter — a single pair of
/// contiguous allocations regardless of how many layers the model has.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    clip: GradClip,
    step: u64,
    /// First-moment estimates, all parameters concatenated.
    m: Vec<f32>,
    /// Second-moment estimates, same layout as `m`.
    v: Vec<f32>,
    /// `offsets[i]` is where parameter `i`'s slice starts in `m`/`v`; a final
    /// sentinel equal to `m.len()` closes the last slice.
    offsets: Vec<usize>,
}

impl Adam {
    /// Create Adam with the usual defaults (`beta1 = 0.9`, `beta2 = 0.999`).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: GradClip::None,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Enable element-wise gradient clipping.
    pub fn with_clip(mut self, clip: GradClip) -> Self {
        self.clip = clip;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Change the learning rate (e.g. for warm-up or decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Apply one update using the gradients currently stored in the layer's
    /// parameters, then leave the gradients untouched (call
    /// [`Layer::zero_grad`] before the next backward pass).
    pub fn step(&mut self, layer: &mut dyn Layer) {
        self.step += 1;
        let t = self.step as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let lr = self.lr;
        let (beta1, beta2, eps, clip) = (self.beta1, self.beta2, self.eps, self.clip);

        let mut idx = 0usize;
        let m_store = &mut self.m;
        let v_store = &mut self.v;
        let offsets = &mut self.offsets;
        layer.visit_params(&mut |p| {
            debug_assert_eq!(offsets.last(), Some(&m_store.len()));
            if idx + 1 == offsets.len() {
                // First step: lay this parameter out at the end of the flat
                // buffers and record the closing sentinel offset.
                m_store.resize(m_store.len() + p.len(), 0.0);
                v_store.resize(v_store.len() + p.len(), 0.0);
                offsets.push(m_store.len());
            }
            let (start, end) = (offsets[idx], offsets[idx + 1]);
            let m = &mut m_store[start..end];
            let v = &mut v_store[start..end];
            assert_eq!(m.len(), p.len(), "parameter shape changed between optimizer steps");
            let data = p.data.as_mut_slice();
            let grad = p.grad.as_slice();
            for i in 0..data.len() {
                let mut g = grad[i];
                if !g.is_finite() {
                    g = 0.0;
                }
                if let GradClip::Value(c) = clip {
                    g = g.clamp(-c, c);
                }
                m[i] = beta1 * m[i] + (1.0 - beta1) * g;
                v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                data[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

/// Plain stochastic gradient descent, mostly used in tests as a sanity check.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Create SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Apply `data -= lr * grad` to every parameter.
    pub fn step(&mut self, layer: &mut dyn Layer) {
        let lr = self.lr;
        layer.visit_params(&mut |p| {
            let data = p.data.as_mut_slice();
            let grad = p.grad.as_slice();
            for i in 0..data.len() {
                let g = grad[i];
                if g.is_finite() {
                    data[i] -= lr * g;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{seeded_rng, Init};
    use crate::linear::Linear;
    use crate::loss::mse;
    use crate::param::Layer;
    use crate::tensor::Matrix;

    fn train_regression(optimizer: &mut dyn FnMut(&mut Linear), steps: usize) -> f32 {
        let mut rng = seeded_rng(99);
        let mut layer = Linear::new(1, 1, Init::KaimingUniform, &mut rng);
        // Learn y = 3x + 1.
        let xs = Matrix::from_vec(8, 1, (0..8).map(|i| i as f32 / 8.0).collect());
        let ys = Matrix::from_vec(8, 1, (0..8).map(|i| 3.0 * i as f32 / 8.0 + 1.0).collect());
        let mut last = f32::MAX;
        for _ in 0..steps {
            layer.zero_grad();
            let pred = layer.forward(&xs);
            let (loss, grad) = mse(&pred, &ys);
            let _ = layer.backward(&grad);
            optimizer(&mut layer);
            last = loss;
        }
        last
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        let mut adam = Adam::new(0.05);
        let loss = train_regression(&mut |l| adam.step(l), 500);
        assert!(loss < 1e-3, "Adam failed to converge, loss = {loss}");
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        let mut sgd = Sgd::new(0.2);
        let loss = train_regression(&mut |l| sgd.step(l), 800);
        assert!(loss < 1e-2, "SGD failed to converge, loss = {loss}");
    }

    #[test]
    fn adam_clipping_limits_update_magnitude() {
        let mut rng = seeded_rng(100);
        let mut layer = Linear::new(1, 1, Init::Zeros, &mut rng);
        let before: Vec<f32> = {
            let mut v = Vec::new();
            layer.visit_params(&mut |p| v.extend_from_slice(p.data.as_slice()));
            v
        };
        // Gigantic gradient.
        layer.visit_params(&mut |p| p.grad.fill(1e9));
        let mut adam = Adam::new(0.1).with_clip(GradClip::Value(1.0));
        adam.step(&mut layer);
        let mut after = Vec::new();
        layer.visit_params(&mut |p| after.extend_from_slice(p.data.as_slice()));
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b - a).abs() <= 0.11, "clipped Adam step too large: {b} -> {a}");
        }
    }

    #[test]
    fn non_finite_gradients_are_ignored() {
        let mut rng = seeded_rng(101);
        let mut layer = Linear::new(2, 2, Init::KaimingUniform, &mut rng);
        layer.visit_params(&mut |p| p.grad.fill(f32::NAN));
        let mut before = Vec::new();
        layer.visit_params(&mut |p| before.extend_from_slice(p.data.as_slice()));
        let mut adam = Adam::new(0.1);
        adam.step(&mut layer);
        let mut after = Vec::new();
        layer.visit_params(&mut |p| after.extend_from_slice(p.data.as_slice()));
        assert!(after.iter().all(|x| x.is_finite()));
        assert_eq!(before, after);
    }
}
