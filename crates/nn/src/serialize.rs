//! A tiny binary codec for model checkpoints.
//!
//! Rather than pulling in a serialization framework for nested tensors, models
//! are persisted by visiting their parameters in a fixed order and writing
//! `(rows, cols, f32 data)` records into a [`bytes`] buffer framed by a magic
//! header and a parameter count. Loading visits the parameters of a freshly
//! constructed model in the same order and overwrites their values, so the
//! architecture itself is reconstructed from the estimator's own config (which
//! is serialized separately with `serde` where needed).

use crate::param::Layer;
use crate::tensor::Matrix;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes identifying a Duet checkpoint.
const MAGIC: &[u8; 8] = b"DUETCKP1";

/// Errors returned by [`load_params`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the expected magic header.
    BadMagic,
    /// The buffer ended before all announced records were read.
    Truncated,
    /// The checkpoint holds a different number of parameters than the model.
    ParamCountMismatch {
        /// Number of parameters the model expects.
        expected: usize,
        /// Number of parameters the checkpoint contains.
        found: usize,
    },
    /// A parameter's shape differs between checkpoint and model.
    ShapeMismatch {
        /// Index of the offending parameter in visitation order.
        index: usize,
        /// Shape the model expects.
        expected: (usize, usize),
        /// Shape found in the checkpoint.
        found: (usize, usize),
    },
    /// The integrity frame around the checkpoint is malformed (wrong frame
    /// magic or a declared length that disagrees with the buffer). Used by
    /// the framing layer in `duet_core::persist`.
    FrameCorrupt(&'static str),
    /// The checkpoint's checksum does not match its payload: the bytes were
    /// corrupted after sealing (torn write, bit rot, truncated copy).
    ChecksumMismatch {
        /// Checksum recorded in the frame header.
        expected: u64,
        /// Checksum recomputed over the payload actually present.
        found: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a Duet checkpoint (bad magic)"),
            CheckpointError::Truncated => write!(f, "checkpoint buffer is truncated"),
            CheckpointError::ParamCountMismatch { expected, found } => {
                write!(f, "checkpoint has {found} parameters, model expects {expected}")
            }
            CheckpointError::ShapeMismatch { index, expected, found } => write!(
                f,
                "parameter {index} shape mismatch: model {expected:?}, checkpoint {found:?}"
            ),
            CheckpointError::FrameCorrupt(what) => {
                write!(f, "checkpoint frame corrupt: {what}")
            }
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: frame says {expected:#018x}, payload hashes to {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialize every parameter of `layer` into a checkpoint buffer.
pub fn save_params(layer: &mut dyn Layer) -> Bytes {
    let mut shapes: Vec<(usize, usize)> = Vec::new();
    let mut payload_len = 0usize;
    layer.visit_params(&mut |p| {
        shapes.push(p.data.shape());
        payload_len += p.data.len() * 4 + 16;
    });
    let mut buf = BytesMut::with_capacity(16 + payload_len);
    buf.put_slice(MAGIC);
    buf.put_u64_le(shapes.len() as u64);
    layer.visit_params(&mut |p| {
        buf.put_u64_le(p.data.rows() as u64);
        buf.put_u64_le(p.data.cols() as u64);
        for &v in p.data.as_slice() {
            buf.put_f32_le(v);
        }
    });
    buf.freeze()
}

/// Load a checkpoint produced by [`save_params`] into `layer`.
///
/// The layer must have been constructed with the same architecture (same
/// parameter order and shapes).
pub fn load_params(layer: &mut dyn Layer, bytes: &[u8]) -> Result<(), CheckpointError> {
    let mut buf = bytes;
    if buf.remaining() < MAGIC.len() + 8 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let count = buf.get_u64_le() as usize;
    let expected = {
        let mut n = 0usize;
        layer.visit_params(&mut |_| n += 1);
        n
    };
    if count != expected {
        return Err(CheckpointError::ParamCountMismatch { expected, found: count });
    }

    // Read all records first so a failure cannot leave the model half-loaded.
    let mut records: Vec<Matrix> = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 16 {
            return Err(CheckpointError::Truncated);
        }
        let rows = buf.get_u64_le();
        let cols = buf.get_u64_le();
        // The shape fields are untrusted: a corrupt checkpoint can declare
        // dimensions whose product overflows `usize`, so size the read with
        // checked arithmetic — an implausible shape can never out-read the
        // buffer, panic, or reserve unbounded memory. Any shape whose data
        // cannot fit the remaining bytes is a truncation by definition.
        let elems = usize::try_from(rows)
            .ok()
            .zip(usize::try_from(cols).ok())
            .and_then(|(r, c)| r.checked_mul(c));
        let need = elems.and_then(|n| n.checked_mul(4));
        match need {
            Some(need) if need <= buf.remaining() => {}
            _ => return Err(CheckpointError::Truncated),
        }
        let (rows, cols) = (rows as usize, cols as usize);
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(buf.get_f32_le());
        }
        records.push(Matrix::from_vec(rows, cols, data));
    }

    let mut idx = 0usize;
    let mut error: Option<CheckpointError> = None;
    layer.visit_params(&mut |p| {
        if error.is_some() {
            return;
        }
        let rec = &records[idx];
        if rec.shape() != p.data.shape() {
            error = Some(CheckpointError::ShapeMismatch {
                index: idx,
                expected: p.data.shape(),
                found: rec.shape(),
            });
        } else {
            p.data = rec.clone();
        }
        idx += 1;
    });
    match error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{seeded_rng, Init};
    use crate::linear::Linear;
    use crate::mlp::Mlp;
    use crate::tensor::Matrix;

    #[test]
    fn round_trip_restores_exact_weights() {
        let mut rng = seeded_rng(30);
        let mut original = Mlp::new(&[3, 5, 2], &mut rng);
        let x = Matrix::full(1, 3, 0.7);
        let before = original.forward_inference(&x);

        let bytes = save_params(&mut original);
        let mut restored = Mlp::new(&[3, 5, 2], &mut seeded_rng(31));
        load_params(&mut restored, &bytes).expect("load should succeed");
        let after = restored.forward_inference(&x);
        assert_eq!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut rng = seeded_rng(32);
        let mut layer = Linear::new(2, 2, Init::KaimingUniform, &mut rng);
        let err = load_params(&mut layer, b"NOTADUET00000000").unwrap_err();
        assert_eq!(err, CheckpointError::BadMagic);
    }

    #[test]
    fn truncated_buffer_rejected() {
        let mut rng = seeded_rng(33);
        let mut layer = Linear::new(4, 4, Init::KaimingUniform, &mut rng);
        let bytes = save_params(&mut layer);
        let cut = &bytes[..bytes.len() - 5];
        let err = load_params(&mut layer, cut).unwrap_err();
        assert_eq!(err, CheckpointError::Truncated);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut rng = seeded_rng(34);
        let mut a = Linear::new(2, 3, Init::KaimingUniform, &mut rng);
        let bytes = save_params(&mut a);
        let mut b = Linear::new(3, 2, Init::KaimingUniform, &mut rng);
        let err = load_params(&mut b, &bytes).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }));
    }

    #[test]
    fn param_count_mismatch_rejected() {
        let mut rng = seeded_rng(35);
        let mut a = Mlp::new(&[2, 3, 2], &mut rng);
        let bytes = save_params(&mut a);
        let mut b = Linear::new(2, 3, Init::KaimingUniform, &mut rng);
        let err = load_params(&mut b, &bytes).unwrap_err();
        assert!(matches!(err, CheckpointError::ParamCountMismatch { .. }));
    }
}
