//! # duet-nn
//!
//! A minimal, dependency-light neural-network substrate for the Duet
//! cardinality-estimation workspace. It replaces the PyTorch/LibTorch stack
//! used by the original paper with a small CPU implementation of exactly the
//! pieces the estimators need:
//!
//! * dense `f32` matrices with shape-dispatched matmul kernels — naive
//!   loops for small/single-row products, blocked panel-packed kernels for
//!   batches ([`tensor::Matrix`], [`kernels`]) — parallelized over a
//!   persistent parked-thread worker pool ([`pool::ComputePool`]),
//! * fully connected and mask-constrained layers ([`linear`]),
//! * MADE / ResMADE construction with per-column block masking ([`made`]),
//! * a plain MLP used by MSCN and the MPSN predicate embedder ([`mlp`]),
//! * softmax / cross-entropy / Q-Error losses ([`loss`]) over vectorized
//!   transcendental kernels with exact/fast dispatch ([`math`]),
//! * Adam and SGD optimizers ([`optim`]),
//! * a small binary checkpoint codec ([`serialize`]).
//!
//! Everything is deterministic given a seed, which the experiment harness
//! relies on for reproducibility.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activation;
pub mod init;
pub mod kernels;
pub mod linear;
pub mod loss;
pub mod made;
pub mod math;
pub mod mlp;
pub mod optim;
pub mod param;
pub mod pool;
pub mod serialize;
pub mod tensor;
pub mod workspace;

pub use activation::{Activation, ReLU};
pub use init::{seeded_rng, Init};
pub use kernels::{f16_to_f32, f32_to_f16, native_tile, with_tile, SparseRows, Tile};
pub use linear::{Linear, MaskedLinear};
pub use loss::{
    grouped_cross_entropy, grouped_cross_entropy_with, mse, mse_with, q_error, softmax,
    softmax_blocks, softmax_into, softmax_rows, softmax_rows_inplace,
};
pub use made::{Made, MadeConfig};
pub use math::{
    fast_exp, fast_exp_slice, softmax_block_into, softmax_blocks_inplace, softmax_restricted_mass,
    SoftmaxMode,
};
pub use mlp::Mlp;
pub use optim::{Adam, GradClip, Sgd};
pub use param::{InferLayer, Layer, Param, WeightKey};
pub use pool::{with_pool, ComputePool};
pub use serialize::{load_params, save_params, CheckpointError};
pub use tensor::{rowvec_matmul_into, Matrix};
pub use workspace::{ForwardWorkspace, MaskedWeightCache, TrainWorkspace, WeightMode};
