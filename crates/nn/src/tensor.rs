//! Dense row-major `f32` matrices and the handful of BLAS-like kernels the
//! rest of the workspace needs.
//!
//! The matrices here are deliberately simple: a shape plus a flat `Vec<f32>`.
//! The performance-sensitive kernels are the matmul family, which dispatches
//! by shape: small or single-row products run a naive `i-k-j` loop whose
//! inner loop streams through contiguous memory; batch-sized products run
//! the blocked, panel-packed kernels of [`crate::kernels`]; and once the
//! work is large enough, row blocks are fanned out over the persistent
//! [`crate::pool::ComputePool`] (no per-call thread spawning, no
//! allocation).
//!
//! Every kernel exists in two forms: an `*_into` variant that writes into a
//! caller-provided output matrix ([`Matrix::matmul_into`],
//! [`Matrix::matmul_nt_into`], [`Matrix::matmul_tn_into`], and the fused
//! [`Matrix::addmm_bias_act_into`] used by the allocation-free inference
//! path), and a thin allocating wrapper ([`Matrix::matmul`] etc.) for code
//! that does not manage buffers. The `*_into` variants reuse the output's
//! heap buffer whenever its capacity suffices, which is what makes
//! steady-state inference allocation-free; their results are bit-identical
//! to the allocating wrappers — and identical across the naive and blocked
//! paths for finite inputs, because every path accumulates each output
//! element in the same strictly ascending order along the shared dimension
//! (see the numerical contract in [`crate::kernels`]).

use crate::activation::Activation;
use crate::kernels;
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix (no heap allocation).
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Build a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build a matrix by calling `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshape to `rows x cols` and zero every element, reusing the existing
    /// heap buffer whenever its capacity suffices (no allocation once warm).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshape to `rows x cols` without zeroing the retained prefix; only for
    /// kernels that overwrite every element before reading it.
    pub(crate) fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Make `self` an exact copy of `other`, reusing `self`'s heap buffer
    /// whenever its capacity suffices.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Fill the whole matrix with a constant value.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise in-place addition: `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// Element-wise in-place scaled addition: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * *b;
        }
    }

    /// Element-wise in-place multiplication: `self *= other`.
    pub fn mul_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in mul_assign");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= *b;
        }
    }

    /// Multiply every element by a scalar.
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Add a row vector (`bias`) to every row.
    ///
    /// # Panics
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_vector(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (x, b) in row.iter_mut().zip(bias.iter()) {
                *x += *b;
            }
        }
    }

    /// Sum of every column across rows, producing a vector of length `cols`.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        self.column_sums_slice(&mut out);
        out
    }

    /// [`Matrix::column_sums`] into a caller-provided buffer (cleared and
    /// resized to `cols`, reusing its capacity — no allocation once warm).
    /// Same row-ascending accumulation order as the allocating variant, so
    /// the results are bit-identical.
    pub fn column_sums_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.cols, 0.0);
        self.column_sums_slice(out);
    }

    /// Shared accumulation loop of the `column_sums` variants.
    fn column_sums_slice(&self, out: &mut [f32]) {
        for row in self.data.chunks_exact(self.cols) {
            for (o, x) in out.iter_mut().zip(row.iter()) {
                *o += *x;
            }
        }
    }

    /// Mean of all elements; returns 0.0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Largest absolute element; returns 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// `self @ other` — standard matrix product `(m x k) @ (k x n) -> (m x n)`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-provided output, which is reshaped to
    /// `(m x n)` reusing its buffer. Bit-identical to the allocating variant.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        self.addmm_bias_act_into(other, None, Activation::Identity, out);
    }

    /// Fused `out = act(self @ w + bias)` in one pass over the output: the
    /// `i-k-j` matmul accumulation, the bias row broadcast, and the
    /// activation are applied per output row while it is cache-hot.
    ///
    /// The per-element operation sequence (accumulate along `k` in order,
    /// then add the bias, then the activation) is exactly the sequence the
    /// unfused `matmul` + `add_row_vector` + activation pipeline performs, so
    /// the result is bit-identical to that pipeline.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match or the bias length is not
    /// `w.cols()`.
    pub fn addmm_bias_act_into(
        &self,
        w: &Matrix,
        bias: Option<&[f32]>,
        act: Activation,
        out: &mut Matrix,
    ) {
        self.addmm_dispatch(w, bias, act, None, out);
    }

    /// [`Matrix::addmm_bias_act_into`] with an optional precomputed density
    /// verdict for `self`, so callers that already ran
    /// [`kernels::mostly_dense`] for their own dispatch (the masked-layer
    /// entry path) don't pay the input scan twice.
    pub(crate) fn addmm_dispatch(
        &self,
        w: &Matrix,
        bias: Option<&[f32]>,
        act: Activation,
        dense_hint: Option<bool>,
        out: &mut Matrix,
    ) {
        assert_eq!(
            self.cols, w.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, w.rows, w.cols
        );
        if let Some(bias) = bias {
            assert_eq!(bias.len(), w.cols, "bias length mismatch");
        }
        let (m, k, n) = (self.rows, self.cols, w.cols);
        out.resize_for_overwrite(m, n);
        let a = &self.data;
        let b = &w.data;
        if kernels::use_blocked(m, k, n) && dense_hint.unwrap_or_else(|| kernels::mostly_dense(a)) {
            kernels::addmm_blocked(a, m, k, b, n, bias, act, &mut out.data);
            return;
        }
        let run_rows = |rows: std::ops::Range<usize>, out_chunk: &mut [f32]| {
            for (local_i, i) in rows.enumerate() {
                let arow = &a[i * k..(i + 1) * k];
                let crow = &mut out_chunk[local_i * n..(local_i + 1) * n];
                crow.fill(0.0);
                for (p, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                        *cv += av * bv;
                    }
                }
                if let Some(bias) = bias {
                    for (cv, &bv) in crow.iter_mut().zip(bias.iter()) {
                        *cv += bv;
                    }
                }
                act.apply(crow);
            }
        };
        parallel_rows(m, k * n, &mut out.data, n, run_rows);
    }

    /// Fused `out = act(self @ w + bias)` against a pre-packed right operand
    /// (see [`crate::kernels::PackedWeight`]): the packing — and with it the
    /// skipping of all-zero weight strips — was paid once when the operand
    /// was cached, so this is the cheapest batched path through a masked
    /// layer. Bit-identical to [`Matrix::addmm_bias_act_into`] against the
    /// equivalent dense matrix, for finite inputs.
    ///
    /// # Panics
    /// Panics if `self.cols()` does not match the packed operand's `k`.
    pub fn addmm_packed_bias_act_into(
        &self,
        packed: &kernels::PackedWeight,
        bias: Option<&[f32]>,
        act: Activation,
        out: &mut Matrix,
    ) {
        let (k, n) = packed.shape();
        assert_eq!(
            self.cols, k,
            "packed matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, k, n
        );
        if let Some(bias) = bias {
            assert_eq!(bias.len(), n, "bias length mismatch");
        }
        let m = self.rows;
        out.resize_for_overwrite(m, n);
        kernels::addmm_packed(&self.data, m, packed, bias, act, &mut out.data);
    }

    /// Fused `out = act(self @ w + bias)` against a pre-packed **f16
    /// storage** right operand (see [`crate::kernels::PackedWeightHalf`]):
    /// the compressed warm tier. Accumulation stays f32; relative to the
    /// full-precision pack the only divergence is the one-time rounding of
    /// each weight to binary16, so results carry a bounded per-weight error
    /// (≤ 2⁻¹¹ relative) rather than bit-identity.
    ///
    /// # Panics
    /// Panics if `self.cols()` does not match the packed operand's `k`.
    pub fn addmm_packed_half_bias_act_into(
        &self,
        packed: &kernels::PackedWeightHalf,
        bias: Option<&[f32]>,
        act: Activation,
        out: &mut Matrix,
    ) {
        let (k, n) = packed.shape();
        assert_eq!(
            self.cols, k,
            "packed-half matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, k, n
        );
        if let Some(bias) = bias {
            assert_eq!(bias.len(), n, "bias length mismatch");
        }
        let m = self.rows;
        out.resize_for_overwrite(m, n);
        kernels::addmm_packed_half(&self.data, m, packed, bias, act, &mut out.data);
    }

    /// `self @ other^T` — `(m x k) @ (n x k)^T -> (m x n)`.
    ///
    /// Used by back-propagation to avoid materializing transposes.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] into a caller-provided output, which is reshaped
    /// reusing its buffer. Bit-identical to the allocating variant.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let m = self.rows;
        let k = self.cols;
        let n = other.rows;
        out.resize_for_overwrite(m, n);
        let a = &self.data;
        let b = &other.data;
        if kernels::use_blocked(m, k, n) && kernels::mostly_dense(a) {
            kernels::matmul_nt_blocked(a, m, k, b, n, &mut out.data);
            return;
        }
        let run_rows = |rows: std::ops::Range<usize>, out_chunk: &mut [f32]| {
            for (local_i, i) in rows.enumerate() {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out_chunk[local_i * n..(local_i + 1) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (x, y) in arow.iter().zip(brow.iter()) {
                        acc += x * y;
                    }
                    *o = acc;
                }
            }
        };
        parallel_rows(m, k * n, &mut out.data, n, run_rows);
    }

    /// `self^T @ other` — `(k x m)^T @ (k x n) -> (m x n)`.
    ///
    /// Used to compute weight gradients (`input^T @ grad_output`).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_tn`] into a caller-provided output, which is reshaped
    /// reusing its buffer. Bit-identical to the allocating variant.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let k = self.rows; // shared dimension
        let m = self.cols;
        let n = other.cols;
        if kernels::use_blocked(m, k, n) && kernels::mostly_dense(&self.data) {
            out.resize_for_overwrite(m, n);
            kernels::matmul_tn_blocked(&self.data, k, m, &other.data, n, &mut out.data);
            return;
        }
        out.reset(m, n);
        // out[i, j] = sum_t self[t, i] * other[t, j]
        // Accumulate row-by-row of the shared dimension: cache friendly on `other`.
        for t in 0..k {
            let arow = &self.data[t * m..(t + 1) * m];
            let brow = &other.data[t * n..(t + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Returns true if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

// Matrix-facing entry points for the sparse-capture kernels. They live here
// (not in `kernels`) so the slice-level kernel module stays free of `Matrix`
// knowledge, mirroring how the blocked kernels are reached through the
// `Matrix::*_into` dispatchers above.
impl kernels::SparseRows {
    /// Re-capture `m`'s nonzero entries, row by row (a `begin` +
    /// `push_row`-per-row convenience). Reuses the capture's buffers; no
    /// allocation once warm.
    pub fn capture_from(&mut self, m: &Matrix) {
        self.begin(m.rows(), m.cols());
        for row in m.data.chunks_exact(m.cols.max(1)) {
            self.push_row(row);
        }
    }

    /// Fused `out = act(self @ w + bias)` — the sparse-input analogue of
    /// [`Matrix::addmm_bias_act_into`], bit-identical to it (and to the
    /// blocked path) for finite inputs; see [`kernels::addmm_sparse`].
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match or the bias length is not
    /// `w.cols()`.
    pub fn addmm_bias_act_into(
        &self,
        w: &Matrix,
        bias: Option<&[f32]>,
        act: Activation,
        out: &mut Matrix,
    ) {
        assert_eq!(
            self.cols(),
            w.rows,
            "sparse matmul shape mismatch: {}x{} @ {}x{}",
            self.rows(),
            self.cols(),
            w.rows,
            w.cols
        );
        if let Some(bias) = bias {
            assert_eq!(bias.len(), w.cols, "bias length mismatch");
        }
        out.resize_for_overwrite(self.rows(), w.cols);
        kernels::addmm_sparse(self, &w.data, w.cols, bias, act, &mut out.data);
    }

    /// `out = self^T @ other` — the sparse-input analogue of
    /// [`Matrix::matmul_tn_into`] (the weight-gradient product
    /// `input^T @ grad`), bit-identical to it for finite inputs; see
    /// [`kernels::matmul_tn_sparse`].
    ///
    /// # Panics
    /// Panics if the shared (row) dimensions do not match.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows(),
            other.rows,
            "sparse matmul_tn shape mismatch: ({}x{})^T @ {}x{}",
            self.rows(),
            self.cols(),
            other.rows,
            other.cols
        );
        out.resize_for_overwrite(self.cols(), other.cols);
        kernels::matmul_tn_sparse(self, &other.data, other.cols, &mut out.data);
    }
}

/// `out = x @ b` for a single row vector `x` of length `b.rows()`.
///
/// The single-row analogue of [`Matrix::matmul_into`] (same accumulation
/// order, so bit-identical to a `1 x k` matmul) for recurrence-style code
/// that keeps its state in flat slices instead of matrices.
pub fn rowvec_matmul_into(x: &[f32], b: &Matrix, out: &mut [f32]) {
    assert_eq!(x.len(), b.rows, "rowvec_matmul shape mismatch");
    assert_eq!(out.len(), b.cols, "rowvec_matmul output length mismatch");
    out.fill(0.0);
    for (p, &av) in x.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let brow = &b.data[p * b.cols..(p + 1) * b.cols];
        for (o, &bv) in out.iter_mut().zip(brow.iter()) {
            *o += av * bv;
        }
    }
}

/// Split `m` output rows across the current [`crate::pool::ComputePool`]
/// when the total work (`m * work_per_row`) is large enough; otherwise run
/// serially. Delegates to the fan-out helper shared with the blocked
/// kernels — the pool's threads are persistent and parked, so unlike the
/// `std::thread::scope` this replaced, crossing the parallelism threshold
/// costs neither thread start-up nor heap allocation.
fn parallel_rows<F>(m: usize, work_per_row: usize, out: &mut [f32], n: usize, run_rows: F)
where
    F: Fn(std::ops::Range<usize>, &mut [f32]) + Sync,
{
    kernels::fan_out_rows(m, n, m.saturating_mul(work_per_row), out, run_rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for p in 0..a.cols() {
                    acc += a.get(i, p) * b.get(p, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Simple LCG so the test does not depend on `rand`.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.clone().into_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_naive() {
        let a = random_matrix(7, 5, 1);
        let b = random_matrix(5, 9, 2);
        let got = a.matmul(&b);
        let want = naive_matmul(&a, &b);
        assert!(approx_eq(&got, &want, 1e-5));
    }

    #[test]
    fn matmul_large_parallel_matches_naive() {
        let a = random_matrix(130, 70, 3);
        let b = random_matrix(70, 260, 4);
        let got = a.matmul(&b);
        let want = naive_matmul(&a, &b);
        assert!(approx_eq(&got, &want, 1e-4));
    }

    #[test]
    fn matmul_nt_matches_transpose() {
        let a = random_matrix(6, 8, 5);
        let b = random_matrix(10, 8, 6);
        let got = a.matmul_nt(&b);
        let want = naive_matmul(&a, &b.transpose());
        assert!(approx_eq(&got, &want, 1e-5));
    }

    #[test]
    fn matmul_tn_matches_transpose() {
        let a = random_matrix(8, 6, 7);
        let b = random_matrix(8, 10, 8);
        let got = a.matmul_tn(&b);
        let want = naive_matmul(&a.transpose(), &b);
        assert!(approx_eq(&got, &want, 1e-5));
    }

    #[test]
    fn add_row_vector_adds_bias() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn column_sums_sums_rows() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.column_sums(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11.0, 22.0, 33.0]);
        a.mul_assign(&b);
        assert_eq!(a.as_slice(), &[110.0, 440.0, 990.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[55.0, 220.0, 495.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[75.0, 260.0, 555.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = random_matrix(5, 9, 11);
        let back = a.transpose().transpose();
        assert!(approx_eq(&a, &back, 0.0));
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a.set(1, 1, f32::NAN);
        assert!(a.has_non_finite());
    }
}
