//! Trainable parameters and the layer abstractions shared by all networks.
//!
//! Two traits split the forward path by purpose:
//!
//! * [`Layer`] is the **training** abstraction: `forward` caches whatever the
//!   matching `backward` needs (inputs, pre-activations), so it takes `&mut
//!   self` and costs memory per call;
//! * [`InferLayer`] is the **inference** abstraction: `infer_into` runs the
//!   same computation through a caller-provided
//!   [`ForwardWorkspace`], caching
//!   nothing and allocating nothing once the workspace is warm. It takes
//!   `&self`, so a model behind an `Arc` can serve concurrent readers.
//!
//! Both paths are bit-identical for the same weights and input.

use crate::tensor::Matrix;
use crate::workspace::ForwardWorkspace;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identity + mutation-version key of one layer's weights, used to validate
/// derived per-workspace caches (the masked effective weights a
/// [`ForwardWorkspace`] memoizes across batches).
///
/// Two components make the key collision-free for its purpose:
///
/// * the **uid** is drawn from a process-global counter at construction *and
///   at every clone*, so two layers never share one — in particular, the
///   clone a checkpoint hot-swap loads new weights into can never alias the
///   model it replaces (this is what makes a hot-swap invalidate every
///   workspace's cached masked weights, even for workspaces the swap has
///   never seen);
/// * the **version** bumps every time the layer hands out mutable parameter
///   access (`visit_params` — the only route the optimizer and the
///   checkpoint loader have to the weights), so in-place training steps
///   invalidate too.
///
/// A cache entry is valid iff its stored key equals the layer's current key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightKey {
    uid: u64,
    version: u64,
}

impl WeightKey {
    /// A key with a freshly allocated uid at version zero.
    pub(crate) fn fresh() -> Self {
        static NEXT_UID: AtomicU64 = AtomicU64::new(1);
        Self { uid: NEXT_UID.fetch_add(1, Ordering::Relaxed), version: 0 }
    }

    /// Record a (potential) weight mutation.
    pub(crate) fn bump(&mut self) {
        self.version += 1;
    }
}

/// A trainable tensor together with its accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub data: Matrix,
    /// Gradient of the loss w.r.t. `data`, accumulated by `backward` calls.
    pub grad: Matrix,
}

impl Param {
    /// Wrap an initialized value with a zeroed gradient of the same shape.
    pub fn new(data: Matrix) -> Self {
        let grad = Matrix::zeros(data.rows(), data.cols());
        Self { data, grad }
    }

    /// Reset the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A differentiable module with cached activations.
///
/// The contract is the usual one for define-by-hand backprop:
/// `forward` must be called before `backward`, and `backward` must be given
/// the gradient of the loss w.r.t. the output of the *most recent* forward.
pub trait Layer {
    /// Compute the output for `input` (a batch: one row per example), caching
    /// whatever is needed for the backward pass.
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Propagate `grad_out` (dL/d output) back, accumulating parameter
    /// gradients and returning dL/d input.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Visit every trainable parameter (for optimizers / serialization).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Zero every parameter gradient.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// An inference-only module: compute the output of `input` into the
/// workspace's scratch buffers, caching nothing.
///
/// `input` must not alias a workspace buffer (the borrow checker enforces
/// this); composite layers chain their internal stages through the
/// workspace's ping-pong pair instead of recursing through this trait.
pub trait InferLayer {
    /// Run the forward computation for `input` (a batch: one row per
    /// example) and return a reference to the output, which lives in `ws`
    /// until the next pass overwrites it. Bit-identical to the training
    /// [`Layer::forward`] for the same weights.
    fn infer_into<'w>(&self, input: &Matrix, ws: &'w mut ForwardWorkspace) -> &'w Matrix;
}

/// Store a copy of `input` in a training cache slot, reusing the previous
/// cached buffer's allocation instead of cloning a fresh one every step.
pub(crate) fn cache_input(slot: &mut Option<Matrix>, input: &Matrix) {
    match slot {
        Some(cached) => cached.copy_from(input),
        None => *slot = Some(input.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_zero_grad_resets() {
        let mut p = Param::new(Matrix::full(2, 2, 1.0));
        p.grad = Matrix::full(2, 2, 3.0);
        p.zero_grad();
        assert_eq!(p.grad.max_abs(), 0.0);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }
}
