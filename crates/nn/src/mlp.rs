//! A plain multi-layer perceptron (`Linear` + ReLU stack) used by the MSCN
//! baseline and by Duet's MLP-based MPSN predicate embedder.

use crate::activation::{Activation, ReLU};
use crate::init::Init;
use crate::linear::Linear;
use crate::param::{InferLayer, Layer, Param};
use crate::tensor::Matrix;
use crate::workspace::ForwardWorkspace;
use rand::rngs::SmallRng;

/// A feed-forward network: `Linear -> ReLU -> ... -> Linear` (no activation on
/// the final layer).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    relus: Vec<ReLU>,
    sizes: Vec<usize>,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[in, hidden, hidden, out]`.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], rng: &mut SmallRng) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        let mut relus = Vec::new();
        for w in sizes.windows(2) {
            layers.push(Linear::new(w[0], w[1], Init::KaimingUniform, rng));
        }
        for _ in 0..layers.len().saturating_sub(1) {
            relus.push(ReLU::new());
        }
        Self { layers, relus, sizes: sizes.to_vec() }
    }

    /// The layer sizes this MLP was built with.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Input feature width.
    pub fn in_features(&self) -> usize {
        self.sizes[0]
    }

    /// Output feature width.
    pub fn out_features(&self) -> usize {
        *self.sizes.last().expect("sizes cannot be empty")
    }

    /// Access to the underlying linear layers (used by the merged-MPSN builder).
    pub fn linears(&self) -> &[Linear] {
        &self.layers
    }

    /// Forward pass without caching activations (inference-only).
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        let mut ws = ForwardWorkspace::new();
        self.infer_into(input, &mut ws).clone()
    }

    /// Scratch-buffer backward: the allocation-free replacement for
    /// [`Layer::backward`], bit-identical to it. The gradient ping-pongs
    /// between the two caller buffers `ga`/`gb` (an MLP has no residual
    /// skips, so two suffice), ReLU gates run in place, and `dW`/`db` are
    /// staged in `dw`/`db` before accumulating into the parameter gradients
    /// (preserving the allocating path's rounding order). Returns the
    /// gradient w.r.t. the input (a reference into `ga` or `gb`) when
    /// `need_input_grad` is set.
    pub fn backward_scratch<'a>(
        &mut self,
        grad_out: &Matrix,
        ga: &'a mut Matrix,
        gb: &'a mut Matrix,
        dw: &mut Matrix,
        db: &mut Vec<f32>,
        need_input_grad: bool,
    ) -> Option<&'a Matrix> {
        let last = self.layers.len() - 1;
        self.layers[last].backward_scratch(grad_out, dw, db, Some(&mut *ga));
        // Which buffer holds the live gradient: `ga` when false, `gb` when true.
        let mut flip = false;
        for i in (0..last).rev() {
            let (cur, next) = if flip { (&mut *gb, &mut *ga) } else { (&mut *ga, &mut *gb) };
            self.relus[i].gate_inplace(cur);
            let want = i > 0 || need_input_grad;
            self.layers[i].backward_scratch(cur, dw, db, if want { Some(next) } else { None });
            if want {
                flip = !flip;
            }
        }
        need_input_grad.then_some(if flip { &*gb } else { &*ga })
    }
}

impl InferLayer for Mlp {
    fn infer_into<'w>(&self, input: &Matrix, ws: &'w mut ForwardWorkspace) -> &'w Matrix {
        ws.rewind();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i < last { Activation::Relu } else { Activation::Identity };
            let (cur, next, _aux) = ws.split();
            let x = if i == 0 { input } else { &*cur };
            layer.infer_raw(x, act, next);
            ws.flip();
        }
        ws.output()
    }
}

impl Layer for Mlp {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        let last = self.layers.len() - 1;
        for i in 0..self.layers.len() {
            x = self.layers[i].forward(&x);
            if i < last {
                x = self.relus[i].forward(&x);
            }
        }
        x
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        // The last layer consumes `grad_out` by reference — no upfront clone.
        let last = self.layers.len() - 1;
        let mut grad = self.layers[last].backward(grad_out);
        for i in (0..last).rev() {
            grad = self.relus[i].backward(&grad);
            grad = self.layers[i].backward(&grad);
        }
        grad
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::loss::mse;
    use crate::optim::Adam;

    #[test]
    fn shapes_are_correct() {
        let mut rng = seeded_rng(20);
        let mut mlp = Mlp::new(&[4, 8, 3], &mut rng);
        let y = mlp.forward(&Matrix::zeros(5, 4));
        assert_eq!(y.shape(), (5, 3));
        assert_eq!(mlp.in_features(), 4);
        assert_eq!(mlp.out_features(), 3);
    }

    #[test]
    fn inference_path_matches_training_path() {
        let mut rng = seeded_rng(21);
        let mut mlp = Mlp::new(&[3, 6, 2], &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.4, 0.9, 1.2, 0.0, -0.7]);
        let a = mlp.forward(&x);
        let b = mlp.forward_inference(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn learns_xor() {
        let mut rng = seeded_rng(22);
        let mut mlp = Mlp::new(&[2, 16, 1], &mut rng);
        let xs = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let ys = Matrix::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]);
        let mut adam = Adam::new(0.02);
        let mut final_loss = f32::MAX;
        for _ in 0..2000 {
            mlp.zero_grad();
            let pred = mlp.forward(&xs);
            let (loss, grad) = mse(&pred, &ys);
            let _ = mlp.backward(&grad);
            adam.step(&mut mlp);
            final_loss = loss;
        }
        assert!(final_loss < 0.03, "MLP failed to learn XOR, loss = {final_loss}");
    }

    #[test]
    fn backward_scratch_matches_allocating_backward_bitwise() {
        let mut rng = seeded_rng(24);
        let mut reference = Mlp::new(&[3, 8, 8, 2], &mut rng);
        let mut scratch = reference.clone();
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.4, 0.9, 1.2, 0.0, -0.7]);
        let target = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);

        reference.zero_grad();
        let pred = reference.forward(&x);
        let (_, grad) = mse(&pred, &target);
        let input_grad_ref = reference.backward(&grad);

        scratch.zero_grad();
        let pred2 = scratch.forward(&x);
        assert_eq!(pred2.as_slice(), pred.as_slice());
        let (mut ga, mut gb) = (Matrix::default(), Matrix::default());
        let (mut dw, mut db) = (Matrix::default(), Vec::new());
        let input_grad =
            scratch.backward_scratch(&grad, &mut ga, &mut gb, &mut dw, &mut db, true).unwrap();
        assert_eq!(input_grad.as_slice(), input_grad_ref.as_slice());

        let mut want = Vec::new();
        reference.visit_params(&mut |p| want.extend_from_slice(p.grad.as_slice()));
        let mut got = Vec::new();
        scratch.visit_params(&mut |p| got.extend_from_slice(p.grad.as_slice()));
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_sizes_panics() {
        let mut rng = seeded_rng(23);
        let _ = Mlp::new(&[4], &mut rng);
    }
}
