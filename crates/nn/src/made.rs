//! MADE / ResMADE: masked autoregressive networks over *column blocks*.
//!
//! Both Duet and the Naru/UAE baselines use the same backbone: a feed-forward
//! network whose weight masks enforce that the output distribution of column
//! `i` depends only on the *input blocks* of columns `< i` (natural ordering).
//! Duet's input blocks encode predicates `(op, value)` while Naru's encode
//! tuple values, but the masking logic is identical, so it lives here in the
//! substrate crate.

use crate::activation::Activation;
use crate::init::Init;
use crate::kernels::SparseRows;
use crate::linear::MaskedLinear;
use crate::param::{InferLayer, Layer, Param};
use crate::tensor::Matrix;
use crate::workspace::{ForwardWorkspace, MaskedWeightCache, TrainWorkspace, WeightMode};
use rand::rngs::SmallRng;

/// Architecture description for a [`Made`] network.
#[derive(Debug, Clone)]
pub struct MadeConfig {
    /// Width of each column's input encoding (block `i` occupies
    /// `input_block_sizes[i]` consecutive input features).
    pub input_block_sizes: Vec<usize>,
    /// Number of logits produced for each column (its number of distinct
    /// values).
    pub output_block_sizes: Vec<usize>,
    /// Hidden layer widths. For `residual = false` each entry is one masked
    /// linear + ReLU layer; for `residual = true` all entries must be equal
    /// and every layer after the first becomes a residual block.
    pub hidden_sizes: Vec<usize>,
    /// Build a ResMADE (residual blocks) instead of a plain MADE.
    pub residual: bool,
}

impl MadeConfig {
    /// Plain MADE with the given hidden sizes.
    pub fn made(
        input_block_sizes: Vec<usize>,
        output_block_sizes: Vec<usize>,
        hidden_sizes: Vec<usize>,
    ) -> Self {
        Self { input_block_sizes, output_block_sizes, hidden_sizes, residual: false }
    }

    /// ResMADE with `blocks` residual blocks of width `hidden`.
    pub fn res_made(
        input_block_sizes: Vec<usize>,
        output_block_sizes: Vec<usize>,
        hidden: usize,
        blocks: usize,
    ) -> Self {
        Self {
            input_block_sizes,
            output_block_sizes,
            hidden_sizes: vec![hidden; blocks.max(1)],
            residual: true,
        }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.input_block_sizes.len()
    }

    /// Total input width.
    pub fn input_width(&self) -> usize {
        self.input_block_sizes.iter().sum()
    }

    /// Total output width (sum of per-column logit counts).
    pub fn output_width(&self) -> usize {
        self.output_block_sizes.iter().sum()
    }
}

/// Degree (column index) of every unit in a layer.
fn input_degrees(block_sizes: &[usize]) -> Vec<usize> {
    let mut degrees = Vec::with_capacity(block_sizes.iter().sum());
    for (col, &w) in block_sizes.iter().enumerate() {
        degrees.extend(std::iter::repeat_n(col, w));
    }
    degrees
}

/// Cyclic degree assignment for hidden units: degrees range over `0..=N-2`
/// (a hidden unit of degree d may read inputs of columns `<= d` and feed
/// outputs of columns `> d`).
fn hidden_degrees(width: usize, num_columns: usize) -> Vec<usize> {
    let max_degree = num_columns.saturating_sub(1).max(1);
    (0..width).map(|k| k % max_degree).collect()
}

/// Mask between two non-output layers: connection allowed iff
/// `deg(next) >= deg(prev)`.
fn hidden_mask(prev: &[usize], next: &[usize]) -> Matrix {
    Matrix::from_fn(prev.len(), next.len(), |i, j| if next[j] >= prev[i] { 1.0 } else { 0.0 })
}

/// Mask into the output layer: connection allowed iff `deg(out) > deg(prev)`.
fn output_mask(prev: &[usize], out: &[usize]) -> Matrix {
    Matrix::from_fn(prev.len(), out.len(), |i, j| if out[j] > prev[i] { 1.0 } else { 0.0 })
}

/// A residual block `y = x + W2·relu(W1·x)`, with both linears masked so that
/// degrees are preserved end-to-end (the identity skip is then mask-safe).
#[derive(Debug, Clone)]
struct ResBlock {
    fc1: MaskedLinear,
    fc2: MaskedLinear,
    cached_pre: Option<Matrix>, // relu input
}

impl ResBlock {
    fn new(degrees: &[usize], init: Init, rng: &mut SmallRng) -> Self {
        let mask = hidden_mask(degrees, degrees);
        Self {
            fc1: MaskedLinear::new(degrees.len(), degrees.len(), mask.clone(), init, rng),
            fc2: MaskedLinear::new(degrees.len(), degrees.len(), mask, init, rng),
            cached_pre: None,
        }
    }

    /// Training forward `out = x + fc2(relu(fc1(x)))` that checkpoints
    /// everything `backward` needs (pre-activation, per-linear inputs) into
    /// reused buffers: `cached_pre` holds `fc1(x)`, `aux` the rectified
    /// hidden state, and the masked effective weights come from the
    /// train-workspace cache. Allocation-free once warm; `backward` works
    /// exactly as after a [`Layer::forward`] call.
    fn train_forward(
        &mut self,
        x: &Matrix,
        aux: &mut Matrix,
        out: &mut Matrix,
        masked: &mut MaskedWeightCache,
        slot: usize,
    ) {
        let e1 = masked.entry(slot, self.fc1.weight_key(), |w| self.fc1.fill_masked(w));
        let pre = self.cached_pre.get_or_insert_with(Matrix::default);
        self.fc1.train_forward_entry(x, e1, pre);
        aux.copy_from(pre);
        Activation::Relu.apply(aux.as_mut_slice());
        let e2 = masked.entry(slot + 1, self.fc2.weight_key(), |w| self.fc2.fill_masked(w));
        self.fc2.train_forward_entry(aux, e2, out);
        out.add_assign(x);
    }

    /// Scratch-buffer backward mirroring [`Layer::backward`] bit for bit:
    /// fc2's input gradient lands in `grad_act`, is ReLU-gated in place
    /// against the checkpointed pre-activation, feeds fc1, and the identity
    /// skip adds `grad_out` into `grad_in`. The masked effective weights come
    /// from the train-workspace cache (slots `slot` / `slot + 1` — guaranteed
    /// hits, since backward runs before the optimizer bumps any
    /// [`WeightKey`](crate::param::WeightKey)). Allocation-free once warm.
    #[allow(clippy::too_many_arguments)]
    fn backward_scratch(
        &mut self,
        grad_out: &Matrix,
        grad_act: &mut Matrix,
        grad_in: &mut Matrix,
        dw: &mut Matrix,
        db: &mut Vec<f32>,
        masked: &mut MaskedWeightCache,
        slot: usize,
    ) {
        let pre = self.cached_pre.as_ref().expect("ResBlock::backward called before forward");
        let e2 = masked.entry(slot + 1, self.fc2.weight_key(), |w| self.fc2.fill_masked(w));
        self.fc2.backward_scratch(grad_out, e2.weight(), dw, db, Some(grad_act));
        // ReLU gate.
        for (g, p) in grad_act.as_mut_slice().iter_mut().zip(pre.as_slice().iter()) {
            if *p <= 0.0 {
                *g = 0.0;
            }
        }
        let e1 = masked.entry(slot, self.fc1.weight_key(), |w| self.fc1.fill_masked(w));
        self.fc1.backward_scratch(grad_act, e1.weight(), dw, db, Some(grad_in));
        grad_in.add_assign(grad_out); // identity skip
    }

    /// Allocation-free fused forward `out = x + fc2(relu(fc1(x)))` against
    /// workspace-cached masked weights (slots `slot` and `slot + 1`): on a
    /// cache hit nothing is re-materialized. Bit-identical to the training
    /// forward.
    fn infer_cached(
        &self,
        x: &Matrix,
        h: &mut Matrix,
        out: &mut Matrix,
        masked: &mut MaskedWeightCache,
        slot: usize,
        mode: WeightMode,
    ) {
        let e1 = masked.entry(slot, self.fc1.weight_key(), |w| self.fc1.fill_masked(w));
        self.fc1.infer_with_entry_mode(x, Activation::Relu, mode, e1, h);
        let e2 = masked.entry(slot + 1, self.fc2.weight_key(), |w| self.fc2.fill_masked(w));
        self.fc2.infer_with_entry_mode(h, Activation::Identity, mode, e2, out);
        out.add_assign(x);
    }
}

impl Layer for ResBlock {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let pre = self.fc1.forward(input);
        let mut act = pre.clone();
        act.as_mut_slice().iter_mut().for_each(|v| {
            if *v < 0.0 {
                *v = 0.0
            }
        });
        self.cached_pre = Some(pre);
        let mut out = self.fc2.forward(&act);
        out.add_assign(input);
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let pre = self.cached_pre.as_ref().expect("ResBlock::backward called before forward");
        let mut grad_act = self.fc2.backward(grad_out);
        // ReLU gate.
        for (g, p) in grad_act.as_mut_slice().iter_mut().zip(pre.as_slice().iter()) {
            if *p <= 0.0 {
                *g = 0.0;
            }
        }
        let mut grad_in = self.fc1.backward(&grad_act);
        grad_in.add_assign(grad_out); // identity skip
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

// Variant sizes differ, but a model holds only a handful of stages, so
// boxing the large variant would cost a pointer chase per layer for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Stage {
    /// Masked linear followed by ReLU.
    MaskedRelu { linear: MaskedLinear, cached_pre: Option<Matrix> },
    /// Residual block (ResMADE).
    Residual(ResBlock),
    /// Final masked linear producing the logits (no activation).
    Output(MaskedLinear),
}

/// A masked autoregressive network over column blocks.
#[derive(Debug, Clone)]
pub struct Made {
    config: MadeConfig,
    stages: Vec<Stage>,
    input_offsets: Vec<usize>,
    output_offsets: Vec<usize>,
    /// Whether the most recent training forward fed the first stage through
    /// the sparse-input kernel (in which case the dense input was never
    /// cached and [`Made::backward_scratch`] must be handed the same sparse
    /// capture).
    first_stage_sparse: bool,
}

impl Made {
    /// Build a MADE/ResMADE for `config`, initializing weights from `rng`.
    ///
    /// # Panics
    /// Panics if the config has no columns, mismatched block lists, or (for
    /// ResMADE) non-uniform hidden sizes.
    pub fn new(config: MadeConfig, rng: &mut SmallRng) -> Self {
        let n = config.num_columns();
        assert!(n > 0, "MADE needs at least one column");
        assert_eq!(
            config.input_block_sizes.len(),
            config.output_block_sizes.len(),
            "input/output block lists must describe the same columns"
        );
        assert!(!config.hidden_sizes.is_empty(), "MADE needs at least one hidden layer");
        if config.residual {
            assert!(
                config.hidden_sizes.windows(2).all(|w| w[0] == w[1]),
                "ResMADE requires uniform hidden sizes"
            );
        }

        let in_deg = input_degrees(&config.input_block_sizes);
        let out_deg = input_degrees(&config.output_block_sizes);

        let mut stages = Vec::new();
        let mut prev_deg = in_deg;
        if config.residual {
            let hidden = config.hidden_sizes[0];
            let h_deg = hidden_degrees(hidden, n);
            let mask = hidden_mask(&prev_deg, &h_deg);
            stages.push(Stage::MaskedRelu {
                linear: MaskedLinear::new(prev_deg.len(), hidden, mask, Init::KaimingUniform, rng),
                cached_pre: None,
            });
            prev_deg = h_deg;
            for _ in 1..config.hidden_sizes.len() {
                stages.push(Stage::Residual(ResBlock::new(&prev_deg, Init::KaimingUniform, rng)));
            }
        } else {
            for &hidden in &config.hidden_sizes {
                let h_deg = hidden_degrees(hidden, n);
                let mask = hidden_mask(&prev_deg, &h_deg);
                stages.push(Stage::MaskedRelu {
                    linear: MaskedLinear::new(
                        prev_deg.len(),
                        hidden,
                        mask,
                        Init::KaimingUniform,
                        rng,
                    ),
                    cached_pre: None,
                });
                prev_deg = h_deg;
            }
        }
        let mask = output_mask(&prev_deg, &out_deg);
        stages.push(Stage::Output(MaskedLinear::new(
            prev_deg.len(),
            out_deg.len(),
            mask,
            Init::XavierUniform,
            rng,
        )));

        let input_offsets = prefix_sums(&config.input_block_sizes);
        let output_offsets = prefix_sums(&config.output_block_sizes);
        Self { config, stages, input_offsets, output_offsets, first_stage_sparse: false }
    }

    /// Architecture description.
    pub fn config(&self) -> &MadeConfig {
        &self.config
    }

    /// Offset of column `i`'s block in the input vector.
    pub fn input_offset(&self, col: usize) -> usize {
        self.input_offsets[col]
    }

    /// Offset of column `i`'s logits in the output vector.
    pub fn output_offset(&self, col: usize) -> usize {
        self.output_offsets[col]
    }

    /// `(offset, len)` of column `i`'s logits.
    pub fn output_block(&self, col: usize) -> (usize, usize) {
        (self.output_offsets[col], self.config.output_block_sizes[col])
    }

    /// Forward pass without caching; use for inference/latency measurements.
    ///
    /// Allocates a throwaway workspace per call; hot paths should hold a
    /// persistent [`ForwardWorkspace`] and use
    /// [`InferLayer::infer_into`] instead.
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        let mut ws = ForwardWorkspace::new();
        self.infer_into(input, &mut ws).clone()
    }

    /// The training forward through a [`TrainWorkspace`]: every stage's
    /// activation is checkpointed into a persistent workspace buffer, the
    /// masked effective weights come from the workspace's
    /// [`MaskedWeightCache`], and each layer's backward cache (input /
    /// pre-activation) is refilled in place — so the steady-state training
    /// forward performs **zero heap allocation** (asserted by the training
    /// phase of `tests/zero_alloc.rs`).
    ///
    /// Semantics match [`Layer::forward`] exactly: the same logits come out
    /// (fused/packed kernels are bit-identical to the unfused pipeline for
    /// finite inputs, see `duet_nn::kernels`), and a subsequent
    /// [`Layer::backward`] call consumes the caches this pass refilled. The
    /// returned reference lives in `tws` until the next pass overwrites it.
    pub fn forward_train<'w>(&mut self, input: &Matrix, tws: &'w mut TrainWorkspace) -> &'w Matrix {
        self.forward_train_sparse(input, None, tws)
    }

    /// [`forward_train`](Self::forward_train) with an optional sparse row
    /// capture of `input`. When `sparse` is provided and sparse *enough*
    /// (see [`SparseRows::is_sparse_enough`] — the exact complement of the
    /// dense kernels' `mostly_dense` dispatch, so the kernel class never
    /// changes), the first masked layer runs the fused sparse-input kernel,
    /// skipping the zero multiplies the one-hot predicate encoding is mostly
    /// made of. Bit-identical to the dense pass for finite inputs; the
    /// matching backward is [`Made::backward_scratch`] handed the same
    /// capture.
    pub fn forward_train_sparse<'w>(
        &mut self,
        input: &Matrix,
        sparse: Option<&SparseRows>,
        tws: &'w mut TrainWorkspace,
    ) -> &'w Matrix {
        assert_eq!(
            input.cols(),
            self.config.input_width(),
            "input width mismatch: expected {}",
            self.config.input_width()
        );
        let num = self.stages.len();
        let (acts, aux, masked) = tws.parts(num);
        let mut slot = 0usize;
        let mut first_sparse = false;
        for i in 0..num {
            let (prev, rest) = acts.split_at_mut(i);
            let x: &Matrix = if i == 0 { input } else { &prev[i - 1] };
            let out = &mut rest[0];
            match &mut self.stages[i] {
                Stage::MaskedRelu { linear, cached_pre } => {
                    let entry = masked.entry(slot, linear.weight_key(), |w| linear.fill_masked(w));
                    let pre = cached_pre.get_or_insert_with(Matrix::default);
                    match sparse {
                        Some(s) if i == 0 && s.is_sparse_enough() => {
                            debug_assert_eq!(
                                (s.rows(), s.cols()),
                                input.shape(),
                                "sparse capture must describe the dense input"
                            );
                            linear.train_forward_sparse(s, entry, pre);
                            first_sparse = true;
                        }
                        _ => linear.train_forward_entry(x, entry, pre),
                    }
                    out.copy_from(pre);
                    Activation::Relu.apply(out.as_mut_slice());
                    slot += 1;
                }
                Stage::Residual(block) => {
                    block.train_forward(x, aux, out, masked, slot);
                    slot += 2;
                }
                Stage::Output(linear) => {
                    let entry = masked.entry(slot, linear.weight_key(), |w| linear.fill_masked(w));
                    linear.train_forward_entry(x, entry, out);
                    slot += 1;
                }
            }
        }
        self.first_stage_sparse = first_sparse;
        &acts[num - 1]
    }

    /// Scratch-buffer backward: the allocation-free replacement for
    /// [`Layer::backward`], bit-identical to it for finite inputs. The
    /// gradient ping-pongs through the [`TrainWorkspace`]'s three reusable
    /// buffers (three, not two: a residual block keeps its incoming gradient
    /// alive across both inner backwards for the identity skip), `dW`/`db`
    /// are staged in workspace scratch before accumulating into the
    /// parameter gradients (preserving the allocating path's rounding
    /// order), and every masked effective weight is a guaranteed
    /// [`MaskedWeightCache`] hit because backward runs before the optimizer
    /// bumps any [`WeightKey`](crate::param::WeightKey).
    ///
    /// `sparse` must be the same capture the preceding
    /// [`forward_train_sparse`](Self::forward_train_sparse) consumed (pass
    /// `None` after a dense forward). With `need_input_grad` the gradient
    /// w.r.t. the network input is left in the workspace and readable via
    /// [`TrainWorkspace::input_grad`] (the MPSN chain needs it; plain tables
    /// skip that final matmul).
    ///
    /// # Panics
    /// Panics if called before a training forward, or if the forward used
    /// the sparse first-layer path and `sparse` is `None`.
    pub fn backward_scratch(
        &mut self,
        grad_logits: &Matrix,
        sparse: Option<&SparseRows>,
        tws: &mut TrainWorkspace,
        need_input_grad: bool,
    ) {
        let first_sparse = self.first_stage_sparse;
        let total_slots: usize =
            self.stages.iter().map(|s| if matches!(s, Stage::Residual(_)) { 2 } else { 1 }).sum();
        let (grads, dw, db, masked) = tws.backward_parts();
        let mut slot = total_slots;
        // Index of the grads buffer holding the live incoming gradient.
        let mut cur = 0usize;
        for (i, stage) in self.stages.iter_mut().enumerate().rev() {
            let is_input_stage = i == 0;
            match stage {
                Stage::Output(linear) => {
                    slot -= 1;
                    let entry = masked.entry(slot, linear.weight_key(), |w| linear.fill_masked(w));
                    linear.backward_scratch(
                        grad_logits,
                        entry.weight(),
                        dw,
                        db,
                        Some(&mut grads[0]),
                    );
                    cur = 0;
                }
                Stage::Residual(block) => {
                    slot -= 2;
                    let (g_out, g_act, g_in) = pick3(grads, cur);
                    block.backward_scratch(g_out, g_act, g_in, dw, db, masked, slot);
                    cur = (cur + 2) % 3;
                }
                Stage::MaskedRelu { linear, cached_pre } => {
                    slot -= 1;
                    let pre = cached_pre.as_ref().expect("Made::backward called before forward");
                    // ReLU gate, in place on the live gradient.
                    for (gv, pv) in grads[cur].as_mut_slice().iter_mut().zip(pre.as_slice().iter())
                    {
                        if *pv <= 0.0 {
                            *gv = 0.0;
                        }
                    }
                    let entry = masked.entry(slot, linear.weight_key(), |w| linear.fill_masked(w));
                    let want_grad_in = !is_input_stage || need_input_grad;
                    let (g_out, g_in_buf) = pick2(grads, cur);
                    let grad_in = if want_grad_in { Some(g_in_buf) } else { None };
                    if is_input_stage && first_sparse {
                        let s = sparse.expect(
                            "forward used the sparse first-layer path; pass the same sparse input to backward",
                        );
                        linear.backward_scratch_sparse(g_out, s, entry.weight(), dw, db, grad_in);
                    } else {
                        linear.backward_scratch(g_out, entry.weight(), dw, db, grad_in);
                    }
                    if want_grad_in {
                        cur = (cur + 1) % 3;
                    }
                }
            }
        }
        debug_assert_eq!(slot, 0);
        tws.set_input_grad_slot(cur);
    }

    /// Total number of trainable scalars. Computed from the stage shapes
    /// (`&self`), so read paths — e.g. a serving tier's memory-budget
    /// accounting — can query sizes without exclusive access.
    pub fn num_parameters(&self) -> usize {
        self.stages
            .iter()
            .map(|stage| match stage {
                Stage::MaskedRelu { linear, .. } => linear.num_parameters(),
                Stage::Residual(block) => block.fc1.num_parameters() + block.fc2.num_parameters(),
                Stage::Output(linear) => linear.num_parameters(),
            })
            .sum()
    }

    /// Model size in bytes assuming `f32` storage (reported in Table II).
    pub fn size_bytes(&self) -> usize {
        self.num_parameters() * std::mem::size_of::<f32>()
    }
}

impl InferLayer for Made {
    /// The serving-path forward: activations ping-pong through the
    /// workspace, and every stage's masked effective weight (`W ⊙ M`) comes
    /// from the workspace's [`MaskedWeightCache`] — materialized once per
    /// (workspace, weights) pair instead of once per batch, and re-validated
    /// by [`crate::param::WeightKey`] so optimizer steps and hot-swaps can
    /// never serve stale weights. Bit-identical to the training
    /// [`Layer::forward`] in the default [`WeightMode::Full`]; under
    /// [`WeightMode::Half`] (see [`ForwardWorkspace::set_weight_mode`]) the
    /// batched stages read the compressed f16 weight tier instead, trading
    /// bit-identity for bounded per-weight rounding error at half the weight
    /// memory traffic.
    fn infer_into<'w>(&self, input: &Matrix, ws: &'w mut ForwardWorkspace) -> &'w Matrix {
        assert_eq!(
            input.cols(),
            self.config.input_width(),
            "input width mismatch: expected {}",
            self.config.input_width()
        );
        ws.rewind();
        let mode = ws.weight_mode();
        let mut slot = 0usize;
        for (i, stage) in self.stages.iter().enumerate() {
            {
                let (cur, next, aux, masked) = ws.split_masked();
                let x: &Matrix = if i == 0 { input } else { cur };
                match stage {
                    Stage::MaskedRelu { linear, .. } => {
                        let entry =
                            masked.entry(slot, linear.weight_key(), |w| linear.fill_masked(w));
                        linear.infer_with_entry_mode(x, Activation::Relu, mode, entry, next);
                        slot += 1;
                    }
                    Stage::Residual(block) => {
                        block.infer_cached(x, aux, next, masked, slot, mode);
                        slot += 2;
                    }
                    Stage::Output(linear) => {
                        let entry =
                            masked.entry(slot, linear.weight_key(), |w| linear.fill_masked(w));
                        linear.infer_with_entry_mode(x, Activation::Identity, mode, entry, next);
                        slot += 1;
                    }
                }
            }
            ws.flip();
        }
        ws.output()
    }
}

/// Borrow the live gradient buffer (`cur`) plus the next free one from the
/// ping-pong triple, disjointly.
fn pick2(bufs: &mut [Matrix; 3], cur: usize) -> (&Matrix, &mut Matrix) {
    let [a, b, c] = bufs;
    match cur {
        0 => (&*a, b),
        1 => (&*b, c),
        _ => (&*c, a),
    }
}

/// Borrow the live gradient buffer (`cur`) plus both free ones — a residual
/// block needs all three at once (incoming gradient stays alive for the
/// identity skip while the two inner backwards write the other two).
fn pick3(bufs: &mut [Matrix; 3], cur: usize) -> (&Matrix, &mut Matrix, &mut Matrix) {
    let [a, b, c] = bufs;
    match cur {
        0 => (&*a, b, c),
        1 => (&*b, c, a),
        _ => (&*c, a, b),
    }
}

fn prefix_sums(sizes: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(sizes.len());
    let mut acc = 0;
    for &s in sizes {
        out.push(acc);
        acc += s;
    }
    out
}

impl Layer for Made {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.config.input_width(),
            "input width mismatch: expected {}",
            self.config.input_width()
        );
        let mut x = input.clone();
        for stage in &mut self.stages {
            x = match stage {
                Stage::MaskedRelu { linear, cached_pre } => {
                    let pre = linear.forward(&x);
                    let mut act = pre.clone();
                    act.as_mut_slice().iter_mut().for_each(|v| {
                        if *v < 0.0 {
                            *v = 0.0
                        }
                    });
                    *cached_pre = Some(pre);
                    act
                }
                Stage::Residual(block) => block.forward(&x),
                Stage::Output(linear) => linear.forward(&x),
            };
        }
        x
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        // The last stage consumes `grad_out` by reference — no upfront clone.
        let mut stages = self.stages.iter_mut().rev();
        let mut grad = match stages.next().expect("MADE has at least an output stage") {
            Stage::Output(linear) => linear.backward(grad_out),
            Stage::Residual(block) => block.backward(grad_out),
            Stage::MaskedRelu { .. } => {
                unreachable!("MADE's final stage is always the output linear")
            }
        };
        for stage in stages {
            grad = match stage {
                Stage::MaskedRelu { linear, cached_pre } => {
                    let pre = cached_pre.as_ref().expect("Made::backward called before forward");
                    let mut g = grad;
                    for (gv, pv) in g.as_mut_slice().iter_mut().zip(pre.as_slice().iter()) {
                        if *pv <= 0.0 {
                            *gv = 0.0;
                        }
                    }
                    linear.backward(&g)
                }
                Stage::Residual(block) => block.backward(&grad),
                Stage::Output(linear) => linear.backward(&grad),
            };
        }
        grad
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for stage in &mut self.stages {
            match stage {
                Stage::MaskedRelu { linear, .. } => linear.visit_params(f),
                Stage::Residual(block) => block.visit_params(f),
                Stage::Output(linear) => linear.visit_params(f),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::loss::grouped_cross_entropy;
    use rand::Rng;

    fn small_config(residual: bool) -> MadeConfig {
        MadeConfig {
            input_block_sizes: vec![4, 3, 5],
            output_block_sizes: vec![6, 2, 4],
            hidden_sizes: vec![16, 16],
            residual,
        }
    }

    #[test]
    fn forward_shapes() {
        for residual in [false, true] {
            let mut rng = seeded_rng(10);
            let mut made = Made::new(small_config(residual), &mut rng);
            let x = Matrix::zeros(3, 12);
            let y = made.forward(&x);
            assert_eq!(y.shape(), (3, 12));
            assert_eq!(made.output_block(2), (8, 4));
        }
    }

    #[test]
    fn autoregressive_property_holds() {
        // Perturbing the input block of column j must not change the logits of
        // any column i <= j.
        for residual in [false, true] {
            let mut rng = seeded_rng(11);
            let mut made = Made::new(small_config(residual), &mut rng);
            let mut base_in = vec![0.3f32; 12];
            for (i, v) in base_in.iter_mut().enumerate() {
                *v += i as f32 * 0.01;
            }
            let base = made.forward(&Matrix::from_vec(1, 12, base_in.clone()));
            for perturb_col in 0..3usize {
                let off = made.input_offset(perturb_col);
                let width = made.config().input_block_sizes[perturb_col];
                let mut moved_in = base_in.clone();
                for v in &mut moved_in[off..off + width] {
                    *v += 17.0;
                }
                let moved = made.forward(&Matrix::from_vec(1, 12, moved_in));
                for out_col in 0..=perturb_col {
                    let (o, len) = made.output_block(out_col);
                    for k in 0..len {
                        assert!(
                            (base.get(0, o + k) - moved.get(0, o + k)).abs() < 1e-5,
                            "output block {out_col} changed when perturbing input block {perturb_col} (residual={residual})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn first_column_output_ignores_all_inputs() {
        let mut rng = seeded_rng(12);
        let mut made = Made::new(small_config(false), &mut rng);
        let a = made.forward(&Matrix::full(1, 12, 0.0));
        let b = made.forward(&Matrix::full(1, 12, 5.0));
        let (o, len) = made.output_block(0);
        for k in 0..len {
            assert!((a.get(0, o + k) - b.get(0, o + k)).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = seeded_rng(13);
        let config = MadeConfig {
            input_block_sizes: vec![2, 3],
            output_block_sizes: vec![3, 2],
            hidden_sizes: vec![8],
            residual: false,
        };
        let mut made = Made::new(config.clone(), &mut rng);
        let batch = 4;
        let mut input = Matrix::zeros(batch, config.input_width());
        for v in input.as_mut_slice() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let labels: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 0], vec![1, 1], vec![2, 0]];
        let blocks = config.output_block_sizes.clone();

        // Analytic gradient of the first weight parameter.
        made.zero_grad();
        let logits = made.forward(&input);
        let (loss, grad_logits) = grouped_cross_entropy(&logits, &blocks, &labels);
        let _ = made.backward(&grad_logits);
        let mut analytic = Vec::new();
        made.visit_params(&mut |p| {
            if analytic.is_empty() {
                analytic = p.grad.as_slice()[..6].to_vec();
            }
        });
        assert!(loss.is_finite());

        // Finite differences on the same entries.
        let eps = 1e-3f32;
        for (idx, &ga) in analytic.iter().enumerate() {
            let mut loss_plus = 0.0;
            let mut loss_minus = 0.0;
            for sign in [1.0f32, -1.0] {
                let mut visited = false;
                made.visit_params(&mut |p| {
                    if !visited {
                        p.data.as_mut_slice()[idx] += sign * eps;
                        visited = true;
                    }
                });
                let logits = made.forward_inference(&input);
                let (l, _) = grouped_cross_entropy(&logits, &blocks, &labels);
                if sign > 0.0 {
                    loss_plus = l;
                } else {
                    loss_minus = l;
                }
                let mut visited = false;
                made.visit_params(&mut |p| {
                    if !visited {
                        p.data.as_mut_slice()[idx] -= sign * eps;
                        visited = true;
                    }
                });
            }
            let numeric = (loss_plus - loss_minus) / (2.0 * eps);
            assert!(
                (numeric - ga).abs() < 2e-2 * (1.0 + ga.abs()),
                "finite-diff mismatch at {idx}: analytic {ga}, numeric {numeric}"
            );
        }
    }

    /// Collect a flat snapshot of every parameter gradient.
    fn grad_snapshot(made: &mut Made) -> Vec<f32> {
        let mut out = Vec::new();
        made.visit_params(&mut |p| out.extend_from_slice(p.grad.as_slice()));
        out
    }

    #[test]
    fn backward_scratch_matches_allocating_backward_bitwise() {
        // Both architectures × both input densities (the sparse capture only
        // engages the fused first layer when the input is sparse enough; the
        // dense fallback must be covered too).
        for residual in [false, true] {
            for nnz_prob in [0.25f32, 0.95] {
                let mut rng = seeded_rng(16);
                let config = small_config(residual);
                let mut reference = Made::new(config.clone(), &mut rng);
                let mut scratch = reference.clone();
                let mut input = Matrix::zeros(5, config.input_width());
                let mut vals = seeded_rng(17);
                for v in input.as_mut_slice() {
                    if vals.gen_range(0.0..1.0f32) < nnz_prob {
                        *v = vals.gen_range(-1.0..1.0);
                    }
                }
                let labels: Vec<Vec<usize>> = (0..5).map(|i| vec![i % 6, i % 2, i % 4]).collect();
                let blocks = config.output_block_sizes.clone();

                reference.zero_grad();
                let logits_ref = reference.forward(&input);
                let (_, grad_logits) = grouped_cross_entropy(&logits_ref, &blocks, &labels);
                let input_grad_ref = reference.backward(&grad_logits);

                scratch.zero_grad();
                let mut tws = TrainWorkspace::new();
                let mut sparse = SparseRows::new();
                sparse.capture_from(&input);
                let logits = scratch.forward_train_sparse(&input, Some(&sparse), &mut tws);
                assert_eq!(logits.as_slice(), logits_ref.as_slice(), "forward diverged");
                scratch.backward_scratch(&grad_logits, Some(&sparse), &mut tws, true);

                assert_eq!(
                    tws.input_grad().as_slice(),
                    input_grad_ref.as_slice(),
                    "input gradient diverged (residual={residual}, nnz={nnz_prob})"
                );
                assert_eq!(
                    grad_snapshot(&mut scratch),
                    grad_snapshot(&mut reference),
                    "parameter gradients diverged (residual={residual}, nnz={nnz_prob})"
                );
            }
        }
    }

    #[test]
    fn scratch_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(23);
        let config = MadeConfig {
            input_block_sizes: vec![2, 3],
            output_block_sizes: vec![3, 2],
            hidden_sizes: vec![8],
            residual: false,
        };
        let mut made = Made::new(config.clone(), &mut rng);
        let batch = 4;
        let mut input = Matrix::zeros(batch, config.input_width());
        // Mostly-zero input so the sparse first-layer path is the one under
        // test (one-hot-like, as fill_input produces).
        for v in input.as_mut_slice() {
            if rng.gen_range(0.0..1.0f32) < 0.3 {
                *v = rng.gen_range(-1.0..1.0);
            }
        }
        let labels: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 0], vec![1, 1], vec![2, 0]];
        let blocks = config.output_block_sizes.clone();

        made.zero_grad();
        let mut tws = TrainWorkspace::new();
        let mut sparse = SparseRows::new();
        sparse.capture_from(&input);
        assert!(sparse.is_sparse_enough(), "test input must exercise the sparse path");
        let logits = made.forward_train_sparse(&input, Some(&sparse), &mut tws).clone();
        let (loss, grad_logits) = grouped_cross_entropy(&logits, &blocks, &labels);
        made.backward_scratch(&grad_logits, Some(&sparse), &mut tws, false);
        assert!(loss.is_finite());
        let mut analytic = Vec::new();
        made.visit_params(&mut |p| {
            if analytic.is_empty() {
                analytic = p.grad.as_slice()[..6].to_vec();
            }
        });

        let eps = 1e-3f32;
        for (idx, &ga) in analytic.iter().enumerate() {
            let mut loss_plus = 0.0;
            let mut loss_minus = 0.0;
            for sign in [1.0f32, -1.0] {
                let mut visited = false;
                made.visit_params(&mut |p| {
                    if !visited {
                        p.data.as_mut_slice()[idx] += sign * eps;
                        visited = true;
                    }
                });
                let logits = made.forward_inference(&input);
                let (l, _) = grouped_cross_entropy(&logits, &blocks, &labels);
                if sign > 0.0 {
                    loss_plus = l;
                } else {
                    loss_minus = l;
                }
                let mut visited = false;
                made.visit_params(&mut |p| {
                    if !visited {
                        p.data.as_mut_slice()[idx] -= sign * eps;
                        visited = true;
                    }
                });
            }
            let numeric = (loss_plus - loss_minus) / (2.0 * eps);
            assert!(
                (numeric - ga).abs() < 2e-2 * (1.0 + ga.abs()),
                "finite-diff mismatch at {idx}: analytic {ga}, numeric {numeric}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn old_backward_after_sparse_forward_panics() {
        // The sparse training forward deliberately drops the dense input
        // cache: a stale old-API backward must fail loudly, not silently use
        // the previous batch's input.
        let mut rng = seeded_rng(24);
        let config = small_config(false);
        let mut made = Made::new(config.clone(), &mut rng);
        let input = Matrix::zeros(2, config.input_width()); // all-zero: maximally sparse
        let mut tws = TrainWorkspace::new();
        let mut sparse = SparseRows::new();
        sparse.capture_from(&input);
        let _ = made.forward_train_sparse(&input, Some(&sparse), &mut tws);
        let _ = made.backward(&Matrix::zeros(2, config.output_width()));
    }

    #[test]
    fn param_count_and_size() {
        for residual in [false, true] {
            let mut rng = seeded_rng(14);
            let mut made = Made::new(small_config(residual), &mut rng);
            let n = made.num_parameters();
            assert!(n > 0);
            assert_eq!(made.size_bytes(), n * 4);
            // The shape-derived count must agree with actually visiting
            // every parameter.
            assert_eq!(n, made.param_count(), "shape-derived count diverged (residual={residual})");
        }
    }

    #[test]
    fn single_column_table_is_supported() {
        let mut rng = seeded_rng(15);
        let config = MadeConfig {
            input_block_sizes: vec![5],
            output_block_sizes: vec![7],
            hidden_sizes: vec![8],
            residual: false,
        };
        let mut made = Made::new(config, &mut rng);
        let a = made.forward(&Matrix::full(1, 5, 0.0));
        let b = made.forward(&Matrix::full(1, 5, 3.0));
        // With one column the output is unconditional: inputs must not matter.
        for k in 0..7 {
            assert!((a.get(0, k) - b.get(0, k)).abs() < 1e-6);
        }
    }
}
