//! Vectorized transcendental kernels: a polynomial `exp` approximation and
//! the single-pass softmax variants built on it.
//!
//! The probability-masking step of Duet's estimation path is exp-bound: for
//! every constrained column of every query row it exponentiates a full
//! per-column logit block. `libm`'s `expf` is a scalar, branchy call that
//! the autovectorizer cannot touch, so after the matmul work of the blocked
//! kernels it became the single largest cost of a batched estimate (~25% of
//! batch-32 latency, see `docs/PERFORMANCE.md`). This module replaces it on
//! the inference path with a branchless Cephes-style polynomial —
//! [`fast_exp`] / [`fast_exp_slice`] — whose loop body is straight-line
//! arithmetic the compiler unrolls and vectorizes.
//!
//! # Modes and error bounds
//!
//! Every softmax entry point takes a [`SoftmaxMode`]:
//!
//! * [`SoftmaxMode::Exact`] uses `f32::exp` (libm), reproducing the
//!   historical `softmax_into` bit-for-bit. It remains the default for
//!   training gradients, where the loss derivation assumes the same exp the
//!   forward used.
//! * [`SoftmaxMode::Fast`] uses [`fast_exp`]. Over the range softmax
//!   actually evaluates — shifted logits `x = l - max(l)` in `[-87.3, 0]` —
//!   the relative error of `fast_exp` versus an `f64` reference is below
//!   **1e-6** (measured ≤ ~3 ulp of `f32`; enforced by the proptests in
//!   `crates/nn/tests/math.rs`). Inputs below the underflow clamp at
//!   `-87.33` return ~1.2e-38 instead of a subnormal/zero: an absolute
//!   error < 2e-38 that is invisible to a probability mass accumulated in
//!   `f64` next to the guaranteed `exp(0) = 1` term. `Fast` is the default
//!   on the inference path (probability masking), where a 1e-6 relative
//!   perturbation of a selectivity is orders of magnitude below model
//!   error and far below the Q-Error noise floor (see the parity tests in
//!   `tests/softmax_modes.rs`).
//!
//! Within one mode all paths are deterministic: the same logits always
//! produce the same probabilities, so batching/serving determinism is
//! unaffected by the dispatch.

use crate::tensor::Matrix;

/// Which exponential a softmax kernel uses; see the [module docs](self) for
/// the error bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SoftmaxMode {
    /// Polynomial [`fast_exp`]: relative error ≤ 1e-6 on the shifted-logit
    /// range, vectorizable. Default on the inference path.
    #[default]
    Fast,
    /// `f32::exp` (libm): bit-for-bit the historical softmax. Default for
    /// training gradients.
    Exact,
}

/// Lowest input before `exp` underflows the smallest normal `f32`
/// (`ln(2^-126) ≈ -87.336`); inputs below clamp here.
const EXP_LO: f32 = -87.336;
/// Highest input before `exp` overflows `f32::MAX` (`ln(f32::MAX) ≈ 88.72`);
/// clamped with margin so the exponent-bit scale below stays in range.
const EXP_HI: f32 = 88.0;
/// `log2(e)`, the reduction constant.
const LOG2E: f32 = std::f32::consts::LOG2_E;
/// High half of `ln 2` (12 explicit mantissa bits, so `n * LN2_HI` is exact
/// for every integral `|n| < 2^11` — the reduction loses no precision).
/// Written out in full because the exact value (`0x3F318000`) is the point.
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
/// Low half of `ln 2` (`LN2_HI + LN2_LO = ln 2` to ~f64 precision).
const LN2_LO: f32 = -2.121_944_4e-4;
/// `1.5 * 2^23`: adding and subtracting it rounds an `f32` in `(-2^22, 2^22)`
/// to the nearest integer without a branch or a libm call.
const ROUND_MAGIC: f32 = 12_582_912.0;

/// Branchless polynomial `e^x` (Cephes `expf` scheme): reduce
/// `x = n·ln2 + r` with `|r| ≤ ln2/2`, evaluate a degree-6 polynomial for
/// `e^r`, and scale by `2^n` through the exponent bits.
///
/// Inputs are clamped to `[-87.336, 88.0]`; see the [module docs](self) for
/// the error bound. The body is straight-line `mul`/`add`/`min`/`max`
/// arithmetic, so [`fast_exp_slice`] autovectorizes.
#[inline(always)]
pub fn fast_exp(x: f32) -> f32 {
    let x = x.clamp(EXP_LO, EXP_HI);
    // n = round(x / ln2), branchless round-to-nearest.
    let n = (x * LOG2E + ROUND_MAGIC) - ROUND_MAGIC;
    // r = x - n·ln2 in two steps so the subtraction is exact.
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // e^r on [-ln2/2, ln2/2] (Cephes minimax coefficients).
    let mut p = 1.987_569_2e-4f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_5e-1;
    p = p * r + 5e-1;
    let frac = (p * r) * r + r + 1.0;
    // 2^n via the exponent field: the clamp keeps n in [-126, 127].
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    frac * scale
}

/// [`fast_exp`] over a slice: `out[i] = e^(x[i])`.
///
/// The loop body is branch-free, so the compiler unrolls and vectorizes it;
/// this is the kernel behind [`SoftmaxMode::Fast`].
///
/// # Panics
/// Panics if the slices differ in length.
pub fn fast_exp_slice(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "fast_exp_slice length mismatch");
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o = fast_exp(v);
    }
}

/// Exponentiate `logits - max` into `out` and return the `f32` running sum,
/// dispatched once per block (no per-element mode branch).
#[inline]
fn exp_shifted_into(logits: &[f32], max: f32, out: &mut [f32], mode: SoftmaxMode) -> f32 {
    let mut sum = 0.0f32;
    match mode {
        SoftmaxMode::Fast => {
            for (o, &l) in out.iter_mut().zip(logits.iter()) {
                let e = fast_exp(l - max);
                *o = e;
                sum += e;
            }
        }
        SoftmaxMode::Exact => {
            for (o, &l) in out.iter_mut().zip(logits.iter()) {
                let e = (l - max).exp();
                *o = e;
                sum += e;
            }
        }
    }
    sum
}

/// Scale a freshly exponentiated block to probabilities (uniform fallback
/// when the sum is not positive, i.e. NaN logits).
#[inline]
fn normalize(out: &mut [f32], sum: f32) {
    if sum > 0.0 {
        let inv = 1.0 / sum;
        out.iter_mut().for_each(|o| *o *= inv);
    } else {
        let uniform = 1.0 / out.len().max(1) as f32;
        out.iter_mut().for_each(|o| *o = uniform);
    }
}

/// Numerically stable softmax of one logit block into `out`.
///
/// Single pass over the block per phase (max, exp+sum, scale), no staging
/// copies. `Exact` mode is bit-for-bit the historical
/// [`crate::loss::softmax_into`]; `Fast` substitutes [`fast_exp`] (error
/// bounds in the [module docs](self)).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn softmax_block_into(logits: &[f32], out: &mut [f32], mode: SoftmaxMode) {
    assert_eq!(logits.len(), out.len(), "softmax_block_into length mismatch");
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let sum = exp_shifted_into(logits, max, out, mode);
    normalize(out, sum);
}

/// In-place [`softmax_block_into`]: the block is overwritten with its
/// probabilities without any input copy.
pub fn softmax_block_inplace(block: &mut [f32], mode: SoftmaxMode) {
    let max = block.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    match mode {
        SoftmaxMode::Fast => {
            for v in block.iter_mut() {
                let e = fast_exp(*v - max);
                *v = e;
                sum += e;
            }
        }
        SoftmaxMode::Exact => {
            for v in block.iter_mut() {
                let e = (*v - max).exp();
                *v = e;
                sum += e;
            }
        }
    }
    normalize(block, sum);
}

/// Matrix-level block softmax, in place: every row of `m` is split into
/// consecutive blocks of widths `blocks[i]` and each block is normalized
/// independently.
///
/// `offsets` is caller scratch for the block offset table (rebuilt cheaply
/// each call, reusing its heap buffer): the kernel walks offsets instead of
/// heap-copying each block the way the old `softmax_blocks` did.
///
/// # Panics
/// Panics if the block widths do not sum to the matrix width.
pub fn softmax_blocks_inplace(
    m: &mut Matrix,
    blocks: &[usize],
    offsets: &mut Vec<usize>,
    mode: SoftmaxMode,
) {
    let total: usize = blocks.iter().sum();
    assert_eq!(m.cols(), total, "block sizes do not cover the logit width");
    offsets.clear();
    let mut acc = 0usize;
    for &b in blocks {
        offsets.push(acc);
        acc += b;
    }
    for row in m.as_mut_slice().chunks_exact_mut(total.max(1)) {
        for (&off, &b) in offsets.iter().zip(blocks.iter()) {
            softmax_block_inplace(&mut row[off..off + b], mode);
        }
    }
}

/// The restricted probability mass `sum(softmax(logits)[lo..hi])`, without
/// materializing normalized probabilities: the unnormalized exponentials are
/// staged in `scratch` (grown once, reused) and the mass is the `f64` ratio
/// of the range sum to the total sum.
///
/// This is the probability-masking inner loop of Duet's Algorithm 3: the
/// estimation path only ever consumes this mass, so skipping the per-element
/// normalization division removes a full pass over every constrained
/// column's domain. The total is ≥ 1 for finite logits (the maximum element
/// exponentiates to exactly 1), so the ratio is well-defined; NaN logits
/// fall back to the uniform mass like the normalized kernels do.
///
/// # Panics
/// Panics if `lo..hi` is out of bounds for the block.
pub fn softmax_restricted_mass(
    logits: &[f32],
    scratch: &mut Vec<f32>,
    lo: usize,
    hi: usize,
    mode: SoftmaxMode,
) -> f64 {
    assert!(lo <= hi && hi <= logits.len(), "restricted mass range out of bounds");
    if logits.len() > scratch.len() {
        scratch.resize(logits.len(), 0.0);
    }
    let buf = &mut scratch[..logits.len()];
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    exp_shifted_into(logits, max, buf, mode);
    let total: f64 = buf.iter().map(|&e| e as f64).sum();
    if total > 0.0 {
        let range: f64 = buf[lo..hi].iter().map(|&e| e as f64).sum();
        range / total
    } else {
        (hi - lo) as f64 / logits.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_exp_tracks_reference_on_softmax_range() {
        for i in 0..=8_700 {
            let x = -(i as f32) / 100.0; // [-87, 0]
            let want = (x as f64).exp();
            let got = fast_exp(x) as f64;
            let rel = ((got - want) / want).abs();
            assert!(rel <= 1e-6, "x={x}: got {got}, want {want}, rel {rel}");
        }
    }

    #[test]
    fn fast_exp_handles_extremes() {
        assert_eq!(fast_exp(0.0), 1.0);
        assert!(fast_exp(-1e9) > 0.0, "underflow clamps to a tiny positive");
        assert!(fast_exp(-1e9) < 2e-38);
        assert!(fast_exp(1e9).is_finite(), "overflow clamps finite");
        assert!(fast_exp(90.0) > 1e38);
    }

    #[test]
    fn fast_exp_slice_matches_scalar() {
        let xs: Vec<f32> = (0..57).map(|i| -0.37 * i as f32).collect();
        let mut out = vec![0.0f32; xs.len()];
        fast_exp_slice(&xs, &mut out);
        for (&x, &o) in xs.iter().zip(out.iter()) {
            assert_eq!(o, fast_exp(x));
        }
    }

    #[test]
    fn softmax_modes_agree_and_normalize() {
        let logits = [1.5f32, -0.3, 4.0, 2.2, -7.5];
        let mut fast = [0.0f32; 5];
        let mut exact = [0.0f32; 5];
        softmax_block_into(&logits, &mut fast, SoftmaxMode::Fast);
        softmax_block_into(&logits, &mut exact, SoftmaxMode::Exact);
        for (f, e) in fast.iter().zip(exact.iter()) {
            assert!((f - e).abs() <= 1e-6, "fast {f} vs exact {e}");
        }
        assert!((fast.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((exact.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn inplace_matches_out_of_place() {
        let logits = [0.0f32, 1.0, 2.0, -3.0];
        for mode in [SoftmaxMode::Fast, SoftmaxMode::Exact] {
            let mut out = [0.0f32; 4];
            softmax_block_into(&logits, &mut out, mode);
            let mut inp = logits;
            softmax_block_inplace(&mut inp, mode);
            assert_eq!(out, inp, "{mode:?}");
        }
    }

    #[test]
    fn blocks_inplace_normalizes_each_block() {
        let mut m = Matrix::from_vec(2, 5, vec![0.0, 1.0, 5.0, 5.0, 5.0, 2.0, 2.0, 0.0, 1.0, 9.0]);
        let mut offsets = Vec::new();
        softmax_blocks_inplace(&mut m, &[2, 3], &mut offsets, SoftmaxMode::Exact);
        for r in 0..2 {
            let row = m.row(r);
            assert!((row[0] + row[1] - 1.0).abs() < 1e-6);
            assert!((row[2] + row[3] + row[4] - 1.0).abs() < 1e-6);
        }
        assert_eq!(offsets, vec![0, 2]);
    }

    #[test]
    fn restricted_mass_matches_normalized_sum() {
        let logits = [0.5f32, -2.0, 3.0, 1.0, 0.0, -1.0];
        let mut scratch = Vec::new();
        for mode in [SoftmaxMode::Fast, SoftmaxMode::Exact] {
            let mut probs = [0.0f32; 6];
            softmax_block_into(&logits, &mut probs, mode);
            let want: f64 = probs[1..4].iter().map(|&p| p as f64).sum();
            let got = softmax_restricted_mass(&logits, &mut scratch, 1, 4, mode);
            assert!((got - want).abs() < 1e-6, "{mode:?}: {got} vs {want}");
        }
        // Degenerate ranges.
        assert_eq!(softmax_restricted_mass(&logits, &mut scratch, 2, 2, SoftmaxMode::Fast), 0.0);
        let all = softmax_restricted_mass(&logits, &mut scratch, 0, 6, SoftmaxMode::Fast);
        assert!((all - 1.0).abs() < 1e-9);
    }
}
