//! Dictionary-encoded columns.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single dictionary-encoded column.
///
/// * `dictionary` holds the distinct values in ascending [`Value`] order, so
///   the value id (index into the dictionary) is order-preserving.
/// * `data` holds one value id per row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    name: String,
    dictionary: Vec<Value>,
    data: Vec<u32>,
}

impl Column {
    /// Build a column from raw row values, constructing the dictionary.
    pub fn from_values(name: impl Into<String>, values: &[Value]) -> Self {
        let mut distinct: BTreeMap<&Value, u32> = BTreeMap::new();
        for v in values {
            let next = distinct.len() as u32;
            distinct.entry(v).or_insert(next);
        }
        // BTreeMap iteration is sorted by Value; re-number ids in sorted order.
        let mut dictionary = Vec::with_capacity(distinct.len());
        for (i, (value, id)) in distinct.iter_mut().enumerate() {
            dictionary.push((*value).clone());
            *id = i as u32;
        }
        let data = values.iter().map(|v| distinct[v]).collect();
        Self { name: name.into(), dictionary, data }
    }

    /// Build a column directly from value ids and a sorted dictionary.
    ///
    /// # Panics
    /// Panics if any id is out of range or the dictionary is not sorted.
    pub fn from_encoded(name: impl Into<String>, dictionary: Vec<Value>, data: Vec<u32>) -> Self {
        assert!(
            dictionary.windows(2).all(|w| w[0] < w[1]),
            "dictionary must be sorted and free of duplicates"
        );
        let ndv = dictionary.len() as u32;
        assert!(data.iter().all(|&id| id < ndv), "value id out of dictionary range");
        Self { name: name.into(), dictionary, data }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of distinct values (NDV).
    pub fn ndv(&self) -> usize {
        self.dictionary.len()
    }

    /// The sorted distinct values.
    pub fn dictionary(&self) -> &[Value] {
        &self.dictionary
    }

    /// The per-row value ids.
    pub fn data(&self) -> &[u32] {
        &self.data
    }

    /// Value id of row `row`.
    #[inline]
    pub fn id_at(&self, row: usize) -> u32 {
        self.data[row]
    }

    /// The value of row `row`.
    pub fn value_at(&self, row: usize) -> &Value {
        &self.dictionary[self.data[row] as usize]
    }

    /// The value with dictionary id `id`.
    pub fn value_of_id(&self, id: u32) -> &Value {
        &self.dictionary[id as usize]
    }

    /// Dictionary id of `value`, if the value occurs in the column.
    pub fn id_of_value(&self, value: &Value) -> Option<u32> {
        self.dictionary.binary_search(value).ok().map(|i| i as u32)
    }

    /// Index of the first dictionary entry `>= value` (i.e. the lower bound),
    /// which equals `ndv()` when every entry is smaller than `value`.
    pub fn lower_bound(&self, value: &Value) -> u32 {
        self.dictionary.partition_point(|v| v < value) as u32
    }

    /// Index of the first dictionary entry `> value` (i.e. the upper bound).
    pub fn upper_bound(&self, value: &Value) -> u32 {
        self.dictionary.partition_point(|v| v <= value) as u32
    }

    /// Append one row holding the value with dictionary id `id`.
    ///
    /// The dictionary is fixed at construction (value ids are
    /// order-preserving indexes into it), so ingest can only append values
    /// the dictionary already knows — which is exactly the invariant the
    /// serving hot-swap relies on: a model retrained on the grown column
    /// keeps the same encoder shapes and stays swap-compatible.
    ///
    /// # Panics
    /// Panics if `id` is out of dictionary range.
    pub fn push_id(&mut self, id: u32) {
        assert!((id as usize) < self.dictionary.len(), "value id out of dictionary range");
        self.data.push(id);
    }

    /// Per-distinct-value occurrence counts.
    pub fn value_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.ndv()];
        for &id in &self.data {
            counts[id as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_column() -> Column {
        Column::from_values(
            "c",
            &[Value::Int(30), Value::Int(10), Value::Int(20), Value::Int(10), Value::Int(30)],
        )
    }

    #[test]
    fn dictionary_is_sorted_and_ids_are_order_preserving() {
        let col = sample_column();
        assert_eq!(col.ndv(), 3);
        assert_eq!(col.dictionary(), &[Value::Int(10), Value::Int(20), Value::Int(30)]);
        assert_eq!(col.data(), &[2, 0, 1, 0, 2]);
        assert_eq!(col.value_at(0), &Value::Int(30));
        assert_eq!(col.id_of_value(&Value::Int(20)), Some(1));
        assert_eq!(col.id_of_value(&Value::Int(99)), None);
    }

    #[test]
    fn bounds_behave_like_partition_points() {
        let col = sample_column();
        assert_eq!(col.lower_bound(&Value::Int(10)), 0);
        assert_eq!(col.upper_bound(&Value::Int(10)), 1);
        assert_eq!(col.lower_bound(&Value::Int(15)), 1);
        assert_eq!(col.upper_bound(&Value::Int(30)), 3);
        assert_eq!(col.lower_bound(&Value::Int(99)), 3);
    }

    #[test]
    fn value_counts_match_data() {
        let col = sample_column();
        assert_eq!(col.value_counts(), vec![2, 1, 2]);
        assert_eq!(col.len(), 5);
        assert!(!col.is_empty());
    }

    #[test]
    fn from_encoded_accepts_valid_input() {
        let col = Column::from_encoded("e", vec![Value::Int(1), Value::Int(5)], vec![0, 1, 1, 0]);
        assert_eq!(col.ndv(), 2);
        assert_eq!(col.value_of_id(1), &Value::Int(5));
    }

    #[test]
    #[should_panic(expected = "value id out of dictionary range")]
    fn from_encoded_rejects_bad_ids() {
        let _ = Column::from_encoded("e", vec![Value::Int(1)], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn from_encoded_rejects_unsorted_dictionary() {
        let _ = Column::from_encoded("e", vec![Value::Int(5), Value::Int(1)], vec![0]);
    }

    #[test]
    fn null_values_participate_in_dictionary() {
        let col = Column::from_values("n", &[Value::Null, Value::Int(1), Value::Null]);
        assert_eq!(col.ndv(), 2);
        assert_eq!(col.value_of_id(0), &Value::Null);
        assert_eq!(col.data(), &[0, 1, 0]);
    }
}
