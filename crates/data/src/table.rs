//! The column-store relation all estimators learn from.

use crate::column::Column;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A relation `T = {C_1, ..., C_N}` stored column-wise with dictionary
/// encoding (see [`Column`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Assemble a table from columns.
    ///
    /// # Panics
    /// Panics if the columns have differing row counts or there are none.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        let num_rows = columns[0].len();
        assert!(
            columns.iter().all(|c| c.len() == num_rows),
            "all columns must have the same number of rows"
        );
        Self { name: name.into(), columns, num_rows }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows `|T|`.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns `N`.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<(usize, &Column)> {
        self.columns.iter().enumerate().find(|(_, c)| c.name() == name)
    }

    /// Number of distinct values per column.
    pub fn ndvs(&self) -> Vec<usize> {
        self.columns.iter().map(|c| c.ndv()).collect()
    }

    /// The value ids of row `row` across all columns.
    pub fn row_ids(&self, row: usize) -> Vec<u32> {
        self.columns.iter().map(|c| c.id_at(row)).collect()
    }

    /// The values of row `row` across all columns (mainly for debugging/CSV).
    pub fn row_values(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value_at(row).clone()).collect()
    }

    /// Restrict the table to its first `k` columns (used by the scalability
    /// experiment, Figure 6, which trains on 100 columns and queries subsets).
    pub fn project_prefix(&self, k: usize) -> Table {
        assert!(k >= 1 && k <= self.num_columns(), "invalid projection width {k}");
        Table::new(format!("{}_first{k}", self.name), self.columns[..k].to_vec())
    }

    /// Restrict the table to its first `n` rows (used to scale experiments).
    pub fn sample_prefix(&self, n: usize) -> Table {
        let n = n.min(self.num_rows);
        let columns = self
            .columns
            .iter()
            .map(|c| {
                Column::from_encoded(
                    c.name().to_string(),
                    c.dictionary().to_vec(),
                    c.data()[..n].to_vec(),
                )
            })
            .collect();
        Table::new(self.name.clone(), columns)
    }

    /// Append one row given as per-column value ids (the ingest path of
    /// online learning).
    ///
    /// Ids must address each column's **existing** dictionary — appending
    /// never introduces new distinct values, so the table's schema (and with
    /// it every trained model's encoder shape) is unchanged by ingest.
    ///
    /// # Panics
    /// Panics if the row width does not match the column count or an id is
    /// out of its column's dictionary range.
    pub fn append_row_ids(&mut self, ids: &[u32]) {
        assert_eq!(ids.len(), self.columns.len(), "row width mismatch");
        for (column, &id) in self.columns.iter_mut().zip(ids) {
            column.push_id(id);
        }
        self.num_rows += 1;
    }

    /// Total number of cells (rows × columns).
    pub fn num_cells(&self) -> usize {
        self.num_rows * self.columns.len()
    }

    /// A zero-row copy of the table that keeps every column's name and
    /// dictionary. Estimators store this "schema table" so they can translate
    /// query literals into value-id intervals without holding on to the data.
    pub fn schema_only(&self) -> Table {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                Column::from_encoded(c.name().to_string(), c.dictionary().to_vec(), Vec::new())
            })
            .collect();
        Table { name: self.name.clone(), columns, num_rows: 0 }
    }
}

/// Incremental row-oriented builder used by the CSV reader and by tests.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    column_names: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl TableBuilder {
    /// Start building a table with the given column names.
    pub fn new(name: impl Into<String>, column_names: Vec<String>) -> Self {
        Self { name: name.into(), column_names, rows: Vec::new() }
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if the row width does not match the column count.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.column_names.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of rows buffered so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were appended yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Finish and dictionary-encode into a [`Table`].
    pub fn build(self) -> Table {
        let ncols = self.column_names.len();
        let mut per_column: Vec<Vec<Value>> = vec![Vec::with_capacity(self.rows.len()); ncols];
        for row in &self.rows {
            for (c, v) in row.iter().enumerate() {
                per_column[c].push(v.clone());
            }
        }
        let columns = self
            .column_names
            .into_iter()
            .zip(per_column)
            .map(|(name, values)| Column::from_values(name, &values))
            .collect();
        Table::new(self.name, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_table() -> Table {
        let mut b = TableBuilder::new("toy", vec!["a".into(), "b".into()]);
        b.push_row(vec![Value::Int(1), Value::text("x")]);
        b.push_row(vec![Value::Int(2), Value::text("y")]);
        b.push_row(vec![Value::Int(1), Value::text("x")]);
        b.build()
    }

    #[test]
    fn builder_produces_consistent_table() {
        let t = toy_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.ndvs(), vec![2, 2]);
        assert_eq!(t.row_ids(1), vec![1, 1]);
        assert_eq!(t.row_values(0), vec![Value::Int(1), Value::text("x")]);
        assert_eq!(t.num_cells(), 6);
    }

    #[test]
    fn column_lookup_by_name() {
        let t = toy_table();
        let (idx, col) = t.column_by_name("b").unwrap();
        assert_eq!(idx, 1);
        assert_eq!(col.ndv(), 2);
        assert!(t.column_by_name("missing").is_none());
    }

    #[test]
    fn projection_keeps_prefix_columns() {
        let t = toy_table();
        let p = t.project_prefix(1);
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.num_rows(), 3);
        assert_eq!(p.column(0).name(), "a");
    }

    #[test]
    fn sample_prefix_truncates_rows() {
        let t = toy_table();
        let s = t.sample_prefix(2);
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.num_columns(), 2);
        // Dictionary is preserved even if some values no longer occur.
        assert_eq!(s.column(1).ndv(), 2);
    }

    #[test]
    #[should_panic(expected = "same number of rows")]
    fn mismatched_columns_rejected() {
        let a = Column::from_values("a", &[Value::Int(1)]);
        let b = Column::from_values("b", &[Value::Int(1), Value::Int(2)]);
        let _ = Table::new("bad", vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn builder_rejects_ragged_rows() {
        let mut b = TableBuilder::new("t", vec!["a".into()]);
        b.push_row(vec![Value::Int(1), Value::Int(2)]);
    }
}
