//! Minimal CSV import/export so real datasets (DMV, Kddcup98, Census) can be
//! dropped in as a replacement for the synthetic generators.
//!
//! The format is deliberately simple: comma-separated, first line is the
//! header, fields containing commas/quotes/newlines are double-quoted with
//! `""` escaping. This covers the preprocessed forms of the paper's datasets.

use crate::table::{Table, TableBuilder};
use crate::value::{parse_value, Value};
use std::io::{self, BufRead, BufReader, Read, Write};

/// Errors produced by the CSV reader.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input had no header line.
    MissingHeader,
    /// A data row had a different number of fields than the header.
    RaggedRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// Number of fields expected (from the header).
        expected: usize,
        /// Number of fields found.
        found: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::MissingHeader => write!(f, "csv input is empty (no header)"),
            CsvError::RaggedRow { line, expected, found } => {
                write!(f, "csv line {line}: expected {expected} fields, found {found}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Split one CSV record into fields, honoring double-quote escaping.
fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    field.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            _ => field.push(c),
        }
    }
    fields.push(field);
    fields
}

/// Quote a field if it needs quoting.
fn quote_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Read a dictionary-encoded [`Table`] from CSV text.
pub fn read_csv<R: Read>(name: &str, reader: R) -> Result<Table, CsvError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Err(CsvError::MissingHeader),
    };
    let column_names = split_record(&header);
    let expected = column_names.len();
    let mut builder = TableBuilder::new(name, column_names);
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line);
        if fields.len() != expected {
            return Err(CsvError::RaggedRow { line: i + 2, expected, found: fields.len() });
        }
        builder.push_row(fields.iter().map(|f| parse_value(f)).collect());
    }
    Ok(builder.build())
}

/// Write a table back out as CSV.
pub fn write_csv<W: Write>(table: &Table, mut writer: W) -> io::Result<()> {
    let header: Vec<String> = table.columns().iter().map(|c| quote_field(c.name())).collect();
    writeln!(writer, "{}", header.join(","))?;
    for row in 0..table.num_rows() {
        let fields: Vec<String> =
            table.columns().iter().map(|c| quote_field(&value_to_field(c.value_at(row)))).collect();
        writeln!(writer, "{}", fields.join(","))?;
    }
    Ok(())
}

fn value_to_field(v: &Value) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_values() {
        let csv = "a,b,c\n1,hello,\n2,\"wor,ld\",3\n1,hello,\n";
        let table = read_csv("t", csv.as_bytes()).unwrap();
        assert_eq!(table.num_rows(), 3);
        assert_eq!(table.num_columns(), 3);
        assert_eq!(table.column(0).ndv(), 2);
        assert_eq!(table.row_values(1)[1], Value::text("wor,ld"));
        assert_eq!(table.row_values(0)[2], Value::Null);

        let mut out = Vec::new();
        write_csv(&table, &mut out).unwrap();
        let again = read_csv("t2", out.as_slice()).unwrap();
        assert_eq!(again.num_rows(), 3);
        for r in 0..3 {
            assert_eq!(again.row_values(r), table.row_values(r));
        }
    }

    #[test]
    fn ragged_row_is_reported_with_line_number() {
        let csv = "a,b\n1,2\n3\n";
        let err = read_csv("t", csv.as_bytes()).unwrap_err();
        match err {
            CsvError::RaggedRow { line, expected, found } => {
                assert_eq!(line, 3);
                assert_eq!(expected, 2);
                assert_eq!(found, 1);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn empty_input_is_rejected() {
        let err = read_csv("t", "".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::MissingHeader));
    }

    #[test]
    fn quoted_quotes_round_trip() {
        let csv = "a\n\"say \"\"hi\"\"\"\n";
        let table = read_csv("t", csv.as_bytes()).unwrap();
        assert_eq!(table.row_values(0)[0], Value::text("say \"hi\""));
        let mut out = Vec::new();
        write_csv(&table, &mut out).unwrap();
        let again = read_csv("t", out.as_slice()).unwrap();
        assert_eq!(again.row_values(0)[0], Value::text("say \"hi\""));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "a\n1\n\n2\n";
        let table = read_csv("t", csv.as_bytes()).unwrap();
        assert_eq!(table.num_rows(), 2);
    }
}
