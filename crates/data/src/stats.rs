//! Per-column and cross-column statistics used by the traditional baselines
//! (Independence, MHist, Sampling) and by the dataset generators' self-checks.

use crate::column::Column;
use crate::table::Table;

/// Summary statistics of a single column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Number of distinct values.
    pub ndv: usize,
    /// Occurrence count per distinct value (indexed by value id).
    pub counts: Vec<u64>,
    /// Shannon entropy of the value distribution, in bits.
    pub entropy_bits: f64,
    /// Frequency of the most common value (skew indicator).
    pub top_frequency: f64,
}

impl ColumnStats {
    /// Compute statistics for a column.
    pub fn of(column: &Column) -> Self {
        let counts = column.value_counts();
        let total: u64 = counts.iter().sum();
        let mut entropy = 0.0f64;
        let mut top = 0u64;
        for &c in &counts {
            if c == 0 {
                continue;
            }
            top = top.max(c);
            let p = c as f64 / total.max(1) as f64;
            entropy -= p * p.log2();
        }
        Self {
            name: column.name().to_string(),
            ndv: column.ndv(),
            counts,
            entropy_bits: entropy,
            top_frequency: top as f64 / total.max(1) as f64,
        }
    }

    /// Fold one newly ingested row's value id into the summary.
    ///
    /// The count histogram is bumped in place and the derived statistics
    /// (entropy, top frequency) are recomputed from the counts — an
    /// `O(ndv)` in-place sweep with no heap allocation, so a serving-side
    /// drift monitor can keep live statistics current on the ingest path
    /// without ever re-scanning the column.
    ///
    /// # Panics
    /// Panics if `id` is outside the column's dictionary range.
    pub fn observe(&mut self, id: u32) {
        assert!((id as usize) < self.counts.len(), "value id out of dictionary range");
        self.counts[id as usize] += 1;
        self.refresh();
    }

    /// Recompute the derived statistics (entropy, top frequency) from the
    /// count histogram, in place.
    pub fn refresh(&mut self) {
        let total: u64 = self.counts.iter().sum();
        let mut entropy = 0.0f64;
        let mut top = 0u64;
        for &c in &self.counts {
            if c == 0 {
                continue;
            }
            top = top.max(c);
            let p = c as f64 / total.max(1) as f64;
            entropy -= p * p.log2();
        }
        self.entropy_bits = entropy;
        self.top_frequency = top as f64 / total.max(1) as f64;
    }

    /// Marginal selectivity of `value id == id`.
    pub fn eq_selectivity(&self, id: u32) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.counts.get(id as usize).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Marginal selectivity of an inclusive id range `[lo, hi]`.
    pub fn range_selectivity(&self, lo: u32, hi: u32) -> f64 {
        if lo > hi {
            return 0.0;
        }
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let hi = (hi as usize).min(self.counts.len().saturating_sub(1));
        let sum: u64 = self.counts[lo as usize..=hi].iter().sum();
        sum as f64 / total as f64
    }
}

/// Statistics for every column of a table.
pub fn table_stats(table: &Table) -> Vec<ColumnStats> {
    table.columns().iter().map(ColumnStats::of).collect()
}

/// Total-variation distance between two columns' value distributions, in
/// `[0, 1]`.
///
/// Each count histogram is normalized to a probability distribution and the
/// distance is `½·Σ|p_i − q_i|` — exactly the largest probability mass by
/// which the two distributions can disagree on any set of values. This is
/// the drift signal of the serving layer's online monitor: identical
/// histograms are at distance 0, and moving a fraction `m` of the rows to
/// different values moves the distance by exactly `m`, so a threshold is
/// directly interpretable as "this share of the data shifted".
///
/// Histograms of different lengths are compared as if the shorter were
/// zero-padded (a dictionary never shrinks, so the longer histogram is the
/// newer one). Degenerate cases are total, not panics: two empty (zero-row)
/// histograms are at distance 0, and an empty histogram is at distance 1
/// from any non-empty one. The function allocates nothing.
pub fn histogram_distance(a: &ColumnStats, b: &ColumnStats) -> f64 {
    let total_a: u64 = a.counts.iter().sum();
    let total_b: u64 = b.counts.iter().sum();
    match (total_a, total_b) {
        (0, 0) => return 0.0,
        (0, _) | (_, 0) => return 1.0,
        _ => {}
    }
    let (total_a, total_b) = (total_a as f64, total_b as f64);
    let mut sum = 0.0;
    for i in 0..a.counts.len().max(b.counts.len()) {
        let pa = a.counts.get(i).copied().unwrap_or(0) as f64 / total_a;
        let pb = b.counts.get(i).copied().unwrap_or(0) as f64 / total_b;
        sum += (pa - pb).abs();
    }
    0.5 * sum
}

/// Pearson correlation between the value ids of two columns.
///
/// Value ids are order-preserving, so this is a (rank-like) association
/// measure in `[-1, 1]`; the synthetic dataset generators use it to verify
/// that requested correlations materialize.
pub fn id_correlation(a: &Column, b: &Column) -> f64 {
    assert_eq!(a.len(), b.len(), "columns must have the same length");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let xs = a.data();
    let ys = b.data();
    let mean_x = xs.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mean_y = ys.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for i in 0..n {
        let dx = xs[i] as f64 - mean_x;
        let dy = ys[i] as f64 - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        0.0
    } else {
        cov / (var_x.sqrt() * var_y.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn col(name: &str, ids: &[i64]) -> Column {
        let values: Vec<Value> = ids.iter().map(|&v| Value::Int(v)).collect();
        Column::from_values(name, &values)
    }

    #[test]
    fn column_stats_basic() {
        let c = col("c", &[1, 1, 1, 2]);
        let s = ColumnStats::of(&c);
        assert_eq!(s.ndv, 2);
        assert_eq!(s.counts, vec![3, 1]);
        assert!((s.top_frequency - 0.75).abs() < 1e-9);
        assert!(s.entropy_bits > 0.0 && s.entropy_bits < 1.0);
    }

    #[test]
    fn selectivities() {
        let s = ColumnStats::of(&col("c", &[1, 1, 2, 3]));
        assert!((s.eq_selectivity(0) - 0.5).abs() < 1e-9);
        assert!((s.range_selectivity(1, 2) - 0.5).abs() < 1e-9);
        assert_eq!(s.range_selectivity(2, 1), 0.0);
        assert_eq!(s.eq_selectivity(10), 0.0);
    }

    #[test]
    fn correlation_detects_dependence() {
        let a = col("a", &[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = col("b", &[1, 2, 3, 4, 5, 6, 7, 8]);
        let c = col("c", &[8, 7, 6, 5, 4, 3, 2, 1]);
        assert!((id_correlation(&a, &b) - 1.0).abs() < 1e-9);
        assert!((id_correlation(&a, &c) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_of_constant_column_is_zero() {
        let a = col("a", &[1, 1, 1, 1]);
        let b = col("b", &[1, 2, 3, 4]);
        assert_eq!(id_correlation(&a, &b), 0.0);
    }

    #[test]
    fn uniform_entropy_is_log_ndv() {
        let c = col("c", &[1, 2, 3, 4]);
        let s = ColumnStats::of(&c);
        assert!((s.entropy_bits - 2.0).abs() < 1e-9);
    }

    #[test]
    fn observe_matches_full_recompute() {
        let mut column = col("c", &[1, 1, 2, 3, 3, 3]);
        let mut incremental = ColumnStats::of(&column);
        for id in [0u32, 2, 2, 1] {
            column.push_id(id);
            incremental.observe(id);
            let full = ColumnStats::of(&column);
            assert_eq!(incremental.counts, full.counts);
            assert!((incremental.entropy_bits - full.entropy_bits).abs() < 1e-12);
            assert!((incremental.top_frequency - full.top_frequency).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "value id out of dictionary range")]
    fn observe_rejects_unknown_ids() {
        let mut s = ColumnStats::of(&col("c", &[1, 2]));
        s.observe(7);
    }

    fn stats_of_counts(counts: Vec<u64>) -> ColumnStats {
        let mut s = ColumnStats {
            name: "h".to_string(),
            ndv: counts.len(),
            counts,
            entropy_bits: 0.0,
            top_frequency: 0.0,
        };
        s.refresh();
        s
    }

    #[test]
    fn distance_edge_cases_are_total() {
        // Empty vs empty, empty vs non-empty, one-row vs one-row, and
        // histograms of different bin counts all produce finite values in
        // [0, 1] — the "stable under bin-count edge cases" guarantee.
        let empty = stats_of_counts(vec![0, 0, 0]);
        let zero_bins = stats_of_counts(Vec::new());
        let one_row = stats_of_counts(vec![0, 1]);
        assert_eq!(histogram_distance(&empty, &empty), 0.0);
        assert_eq!(histogram_distance(&empty, &zero_bins), 0.0);
        assert_eq!(histogram_distance(&empty, &one_row), 1.0);
        assert_eq!(histogram_distance(&one_row, &empty), 1.0);
        assert_eq!(histogram_distance(&one_row, &one_row), 0.0);
        // Same distribution expressed over more bins (zero padding).
        let padded = stats_of_counts(vec![0, 1, 0, 0]);
        assert_eq!(histogram_distance(&one_row, &padded), 0.0);
        // Disjoint one-row histograms are maximally distant.
        let other_row = stats_of_counts(vec![1, 0]);
        assert_eq!(histogram_distance(&one_row, &other_row), 1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// A histogram is at distance zero from itself (and from a copy
            /// scaled by a constant factor — normalization removes totals).
            #[test]
            fn distance_is_zero_on_identical_histograms(
                counts in prop::collection::vec(0u64..50, 1..12),
                scale in 1u64..5,
            ) {
                let a = stats_of_counts(counts.clone());
                prop_assert_eq!(histogram_distance(&a, &a), 0.0);
                let scaled = stats_of_counts(counts.iter().map(|&c| c * scale).collect());
                prop_assert!(histogram_distance(&a, &scaled).abs() < 1e-12);
            }

            /// Distance is symmetric and bounded in [0, 1], whatever the bin
            /// counts (including empty histograms and mismatched lengths).
            #[test]
            fn distance_is_symmetric_and_bounded(
                a in prop::collection::vec(0u64..50, 0..12),
                b in prop::collection::vec(0u64..50, 0..12),
            ) {
                let (a, b) = (stats_of_counts(a), stats_of_counts(b));
                let ab = histogram_distance(&a, &b);
                let ba = histogram_distance(&b, &a);
                prop_assert_eq!(ab, ba);
                prop_assert!((0.0..=1.0).contains(&ab), "distance {} out of range", ab);
            }

            /// Moving ever more mass from one bin to another moves the
            /// distance from the original monotonically upward.
            #[test]
            fn distance_is_monotone_under_increasing_mass_shift(
                counts in prop::collection::vec(1u64..20, 2..10),
                from_choice in 0usize..10,
                to_choice in 0usize..10,
            ) {
                let from = from_choice % counts.len();
                let to = (from + 1 + to_choice % (counts.len() - 1)) % counts.len();
                let baseline = stats_of_counts(counts.clone());
                let mut previous = 0.0;
                for moved in 0..=counts[from] {
                    let mut shifted = counts.clone();
                    shifted[from] -= moved;
                    shifted[to] += moved;
                    let d = histogram_distance(&baseline, &stats_of_counts(shifted));
                    prop_assert!(
                        d >= previous - 1e-12,
                        "distance decreased: {} after {}", d, previous
                    );
                    previous = d;
                }
            }
        }
    }
}
