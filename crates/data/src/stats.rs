//! Per-column and cross-column statistics used by the traditional baselines
//! (Independence, MHist, Sampling) and by the dataset generators' self-checks.

use crate::column::Column;
use crate::table::Table;

/// Summary statistics of a single column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Number of distinct values.
    pub ndv: usize,
    /// Occurrence count per distinct value (indexed by value id).
    pub counts: Vec<u64>,
    /// Shannon entropy of the value distribution, in bits.
    pub entropy_bits: f64,
    /// Frequency of the most common value (skew indicator).
    pub top_frequency: f64,
}

impl ColumnStats {
    /// Compute statistics for a column.
    pub fn of(column: &Column) -> Self {
        let counts = column.value_counts();
        let total: u64 = counts.iter().sum();
        let mut entropy = 0.0f64;
        let mut top = 0u64;
        for &c in &counts {
            if c == 0 {
                continue;
            }
            top = top.max(c);
            let p = c as f64 / total.max(1) as f64;
            entropy -= p * p.log2();
        }
        Self {
            name: column.name().to_string(),
            ndv: column.ndv(),
            counts,
            entropy_bits: entropy,
            top_frequency: top as f64 / total.max(1) as f64,
        }
    }

    /// Marginal selectivity of `value id == id`.
    pub fn eq_selectivity(&self, id: u32) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.counts.get(id as usize).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Marginal selectivity of an inclusive id range `[lo, hi]`.
    pub fn range_selectivity(&self, lo: u32, hi: u32) -> f64 {
        if lo > hi {
            return 0.0;
        }
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let hi = (hi as usize).min(self.counts.len().saturating_sub(1));
        let sum: u64 = self.counts[lo as usize..=hi].iter().sum();
        sum as f64 / total as f64
    }
}

/// Statistics for every column of a table.
pub fn table_stats(table: &Table) -> Vec<ColumnStats> {
    table.columns().iter().map(ColumnStats::of).collect()
}

/// Pearson correlation between the value ids of two columns.
///
/// Value ids are order-preserving, so this is a (rank-like) association
/// measure in `[-1, 1]`; the synthetic dataset generators use it to verify
/// that requested correlations materialize.
pub fn id_correlation(a: &Column, b: &Column) -> f64 {
    assert_eq!(a.len(), b.len(), "columns must have the same length");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let xs = a.data();
    let ys = b.data();
    let mean_x = xs.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mean_y = ys.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for i in 0..n {
        let dx = xs[i] as f64 - mean_x;
        let dy = ys[i] as f64 - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        0.0
    } else {
        cov / (var_x.sqrt() * var_y.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn col(name: &str, ids: &[i64]) -> Column {
        let values: Vec<Value> = ids.iter().map(|&v| Value::Int(v)).collect();
        Column::from_values(name, &values)
    }

    #[test]
    fn column_stats_basic() {
        let c = col("c", &[1, 1, 1, 2]);
        let s = ColumnStats::of(&c);
        assert_eq!(s.ndv, 2);
        assert_eq!(s.counts, vec![3, 1]);
        assert!((s.top_frequency - 0.75).abs() < 1e-9);
        assert!(s.entropy_bits > 0.0 && s.entropy_bits < 1.0);
    }

    #[test]
    fn selectivities() {
        let s = ColumnStats::of(&col("c", &[1, 1, 2, 3]));
        assert!((s.eq_selectivity(0) - 0.5).abs() < 1e-9);
        assert!((s.range_selectivity(1, 2) - 0.5).abs() < 1e-9);
        assert_eq!(s.range_selectivity(2, 1), 0.0);
        assert_eq!(s.eq_selectivity(10), 0.0);
    }

    #[test]
    fn correlation_detects_dependence() {
        let a = col("a", &[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = col("b", &[1, 2, 3, 4, 5, 6, 7, 8]);
        let c = col("c", &[8, 7, 6, 5, 4, 3, 2, 1]);
        assert!((id_correlation(&a, &b) - 1.0).abs() < 1e-9);
        assert!((id_correlation(&a, &c) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_of_constant_column_is_zero() {
        let a = col("a", &[1, 1, 1, 1]);
        let b = col("b", &[1, 2, 3, 4]);
        assert_eq!(id_correlation(&a, &b), 0.0);
    }

    #[test]
    fn uniform_entropy_is_log_ndv() {
        let c = col("c", &[1, 2, 3, 4]);
        let s = ColumnStats::of(&c);
        assert!((s.entropy_bits - 2.0).abs() < 1e-9);
    }
}
