//! Cell values stored by the column-store tables.
//!
//! All estimators in this workspace operate on *dictionary-encoded* columns:
//! every column keeps a sorted list of its distinct [`Value`]s and stores one
//! `u32` value id per row. Range predicates on the original domain therefore
//! become contiguous id ranges, which is exactly the representation Naru, UAE
//! and Duet all work with (they "discretize" columns the same way).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single cell value.
///
/// Ordering is total: `Null < Int(_) < Text(_)`, integers by numeric value,
/// text lexicographically. This matches the order used when building column
/// dictionaries, so value-id order always agrees with `Value` order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL / missing value.
    Null,
    /// 64-bit integer (also used for dates encoded as days since epoch).
    Int(i64),
    /// UTF-8 string.
    Text(String),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Rank of the variant, used for cross-variant ordering.
    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Text(_) => 2,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// Parse a CSV field into a [`Value`]: empty string becomes `Null`, a value
/// that parses as `i64` becomes `Int`, anything else `Text`.
pub fn parse_value(field: &str) -> Value {
    if field.is_empty() {
        Value::Null
    } else if let Ok(i) = field.parse::<i64>() {
        Value::Int(i)
    } else {
        Value::Text(field.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_sane() {
        assert!(Value::Null < Value::Int(-100));
        assert!(Value::Int(5) < Value::Int(6));
        assert!(Value::Int(1000) < Value::text("a"));
        assert!(Value::text("a") < Value::text("b"));
        assert_eq!(Value::Int(3).cmp(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn parse_value_detects_types() {
        assert_eq!(parse_value(""), Value::Null);
        assert_eq!(parse_value("42"), Value::Int(42));
        assert_eq!(parse_value("-7"), Value::Int(-7));
        assert_eq!(parse_value("hello"), Value::text("hello"));
        assert_eq!(parse_value("4.5"), Value::text("4.5"));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for v in [Value::Null, Value::Int(12), Value::text("abc")] {
            assert_eq!(parse_value(&v.to_string()), v);
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from("x".to_string()), Value::text("x"));
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }
}
