//! A configurable synthetic relation generator.
//!
//! The paper evaluates on three real datasets (DMV, Kddcup98, Census). Those
//! files are not redistributable here, so experiments run on synthetic tables
//! generated to match the *shape* that matters for cardinality estimation:
//!
//! * the number of columns,
//! * each column's number of distinct values (NDV),
//! * marginal skew (Zipf-like frequency distributions), and
//! * cross-column correlation (via a shared latent factor per row).
//!
//! The generator is deterministic given a seed. Real CSV files can be used
//! instead via [`crate::csv::read_csv`].

use crate::column::Column;
use crate::table::Table;
use crate::value::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Specification of one synthetic column.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Number of distinct values in the column's domain.
    pub ndv: usize,
    /// Zipf exponent of the marginal distribution (0 = uniform; 1-1.5 = the
    /// heavy skew typical of categorical attributes such as vehicle makes).
    pub zipf_s: f64,
    /// Probability in `[0, 1]` that a row's value is derived from the row's
    /// shared latent factor instead of drawn independently; higher values
    /// produce stronger cross-column correlation.
    pub correlation: f64,
}

impl ColumnSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ndv: usize, zipf_s: f64, correlation: f64) -> Self {
        assert!(ndv >= 1, "a column needs at least one distinct value");
        assert!((0.0..=1.0).contains(&correlation), "correlation must be in [0,1]");
        assert!(zipf_s >= 0.0, "zipf exponent must be non-negative");
        Self { name: name.into(), ndv, zipf_s, correlation }
    }
}

/// Specification of a whole synthetic table.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Table name.
    pub name: String,
    /// Number of rows to generate.
    pub rows: usize,
    /// Column specifications.
    pub columns: Vec<ColumnSpec>,
}

impl SyntheticSpec {
    /// Create a specification.
    pub fn new(name: impl Into<String>, rows: usize, columns: Vec<ColumnSpec>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Self { name: name.into(), rows, columns }
    }

    /// Generate the table deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Table {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Pre-compute each column's Zipf CDF and a value permutation.
        //
        // The permutation decouples "frequency rank" from "domain order":
        // without it the most frequent value would always be the smallest one,
        // which would make range queries unrealistically easy.
        let cdfs: Vec<Vec<f64>> = self.columns.iter().map(|c| zipf_cdf(c.ndv, c.zipf_s)).collect();
        let perms: Vec<Vec<u32>> =
            self.columns.iter().map(|c| random_permutation(c.ndv, &mut rng)).collect();

        let mut column_data: Vec<Vec<u32>> =
            self.columns.iter().map(|_| Vec::with_capacity(self.rows)).collect();

        for _ in 0..self.rows {
            // One latent factor per row drives correlated columns.
            let latent: f64 = rng.gen();
            for (c, spec) in self.columns.iter().enumerate() {
                let u: f64 = if rng.gen::<f64>() < spec.correlation {
                    // Correlated draw: jitter the latent slightly so the
                    // dependence is strong but not a deterministic function.
                    (latent + rng.gen::<f64>() * 0.05).min(0.999_999)
                } else {
                    rng.gen()
                };
                let rank = inverse_cdf(&cdfs[c], u);
                column_data[c].push(perms[c][rank]);
            }
        }

        let columns = self
            .columns
            .iter()
            .zip(column_data)
            .map(|(spec, data)| {
                let dictionary: Vec<Value> = (0..spec.ndv as i64).map(Value::Int).collect();
                Column::from_encoded(spec.name.clone(), dictionary, data)
            })
            .collect();
        Table::new(self.name.clone(), columns)
    }
}

/// Cumulative distribution of a Zipf(s) law over `ndv` ranks.
fn zipf_cdf(ndv: usize, s: f64) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..ndv).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    if let Some(last) = weights.last_mut() {
        *last = 1.0;
    }
    weights
}

/// Smallest rank whose CDF value exceeds `u`.
fn inverse_cdf(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c <= u).min(cdf.len() - 1)
}

fn random_permutation(n: usize, rng: &mut SmallRng) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{id_correlation, ColumnStats};

    fn spec() -> SyntheticSpec {
        SyntheticSpec::new(
            "syn",
            5_000,
            vec![
                ColumnSpec::new("hub", 50, 1.0, 1.0),
                ColumnSpec::new("corr", 40, 0.8, 0.9),
                ColumnSpec::new("indep", 30, 0.0, 0.0),
                ColumnSpec::new("binary", 2, 0.5, 0.5),
            ],
        )
    }

    #[test]
    fn shape_matches_spec() {
        let t = spec().generate(7);
        assert_eq!(t.num_rows(), 5_000);
        assert_eq!(t.num_columns(), 4);
        assert_eq!(t.ndvs(), vec![50, 40, 30, 2]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().generate(42);
        let b = spec().generate(42);
        for c in 0..a.num_columns() {
            assert_eq!(a.column(c).data(), b.column(c).data());
        }
        let c = spec().generate(43);
        let any_diff = (0..a.num_columns()).any(|i| a.column(i).data() != c.column(i).data());
        assert!(any_diff, "different seeds should give different tables");
    }

    #[test]
    fn skewed_columns_are_skewed_and_uniform_columns_are_not() {
        let t = spec().generate(11);
        let skewed = ColumnStats::of(t.column(0));
        let uniform = ColumnStats::of(t.column(2));
        assert!(skewed.top_frequency > 0.15, "zipf(1.0) should concentrate mass");
        assert!(uniform.top_frequency < 0.08, "uniform column should not concentrate mass");
    }

    #[test]
    fn correlated_columns_are_more_associated_than_independent_ones() {
        let t = spec().generate(13);
        let corr = id_correlation(t.column(0), t.column(1)).abs();
        let indep = id_correlation(t.column(0), t.column(2)).abs();
        assert!(
            corr > indep + 0.1,
            "expected correlated pair ({corr}) to exceed independent pair ({indep})"
        );
    }

    #[test]
    fn zipf_cdf_is_monotone_and_ends_at_one() {
        let cdf = zipf_cdf(10, 1.2);
        assert!(cdf.windows(2).all(|w| w[1] >= w[0]));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(inverse_cdf(&cdf, 0.0), 0);
        assert_eq!(inverse_cdf(&cdf, 0.999_999_9), 9);
    }

    #[test]
    #[should_panic(expected = "correlation must be in [0,1]")]
    fn invalid_correlation_rejected() {
        let _ = ColumnSpec::new("x", 4, 0.0, 1.5);
    }
}
