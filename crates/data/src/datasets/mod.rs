//! Dataset presets matching the shape of the paper's evaluation datasets.
//!
//! | Paper dataset | Preset | Columns | NDV range | Default rows (paper) |
//! |---|---|---|---|---|
//! | DMV (vehicle registrations) | [`dmv_like`] | 11 | 2 – 2,774 | 12,370,355 |
//! | Kddcup98 | [`kddcup98_like`] | 100 | 2 – 57 | 95,412 |
//! | Census | [`census_like`] | 14 | 2 – 123 | 48,842 |
//!
//! The row count is a parameter so tests and CI-sized runs can use scaled-down
//! tables; the experiment binaries default to the paper's row counts divided
//! by a scale factor documented in `EXPERIMENTS.md`.

mod synthetic;

pub use synthetic::{ColumnSpec, SyntheticSpec};

use crate::table::Table;

/// Number of rows of the real DMV table used in the paper.
pub const DMV_PAPER_ROWS: usize = 12_370_355;
/// Number of rows of the real Kddcup98 table used in the paper.
pub const KDDCUP98_PAPER_ROWS: usize = 95_412;
/// Number of rows of the real Census table used in the paper.
pub const CENSUS_PAPER_ROWS: usize = 48_842;

/// DMV-like table: 11 columns, high cardinality, large NDV spread (2 to 2,774),
/// strong correlations between the vehicle-description attributes.
pub fn dmv_like(rows: usize, seed: u64) -> Table {
    let columns = vec![
        // (name, ndv, zipf skew, correlation with the row's latent factor)
        ColumnSpec::new("record_type", 4, 0.6, 0.1),
        ColumnSpec::new("registration_class", 75, 1.1, 0.7),
        ColumnSpec::new("state", 67, 1.3, 0.2),
        ColumnSpec::new("county", 63, 0.9, 0.3),
        ColumnSpec::new("body_type", 36, 1.2, 0.8),
        ColumnSpec::new("fuel_type", 9, 1.0, 0.6),
        ColumnSpec::new("valid_date", 2_101, 0.4, 0.5),
        ColumnSpec::new("color", 225, 1.1, 0.4),
        ColumnSpec::new("scofflaw_indicator", 2, 0.8, 0.1),
        ColumnSpec::new("suspension_indicator", 2, 0.9, 0.1),
        ColumnSpec::new("revocation_indicator", 2_774, 0.7, 0.6),
    ];
    SyntheticSpec::new("dmv_like", rows, columns).generate(seed)
}

/// Kddcup98-like table: 100 columns with small domains (NDV 2 to 57); used to
/// evaluate scalability on high-dimensional tables.
pub fn kddcup98_like(rows: usize, seed: u64) -> Table {
    let mut columns = Vec::with_capacity(100);
    for i in 0..100usize {
        // Cycle NDVs through the 2..=57 range the paper reports, with a mix of
        // skews and correlation strengths so the table has realistic structure.
        let ndv = 2 + (i * 9) % 56; // gcd(9, 56) = 1, so this covers 2..=57
        let zipf = match i % 4 {
            0 => 0.0,
            1 => 0.6,
            2 => 1.0,
            _ => 1.4,
        };
        let corr = match i % 5 {
            0 => 0.0,
            1 => 0.2,
            2 => 0.5,
            3 => 0.7,
            _ => 0.9,
        };
        columns.push(ColumnSpec::new(format!("attr_{i:03}"), ndv, zipf, corr));
    }
    SyntheticSpec::new("kddcup98_like", rows, columns).generate(seed)
}

/// Census-like table: 14 columns, small table, NDV 2 to 123.
pub fn census_like(rows: usize, seed: u64) -> Table {
    let columns = vec![
        ColumnSpec::new("age", 74, 0.3, 0.5),
        ColumnSpec::new("workclass", 9, 1.0, 0.4),
        ColumnSpec::new("fnlwgt_bucket", 123, 0.2, 0.1),
        ColumnSpec::new("education", 16, 0.8, 0.9),
        ColumnSpec::new("education_num", 16, 0.8, 0.9),
        ColumnSpec::new("marital_status", 7, 0.9, 0.5),
        ColumnSpec::new("occupation", 15, 0.7, 0.6),
        ColumnSpec::new("relationship", 6, 0.8, 0.5),
        ColumnSpec::new("race", 5, 1.3, 0.2),
        ColumnSpec::new("sex", 2, 0.4, 0.3),
        ColumnSpec::new("capital_gain_bucket", 119, 1.6, 0.4),
        ColumnSpec::new("capital_loss_bucket", 92, 1.6, 0.4),
        ColumnSpec::new("hours_per_week", 96, 0.5, 0.5),
        ColumnSpec::new("native_country", 42, 1.8, 0.2),
    ];
    SyntheticSpec::new("census_like", rows, columns).generate(seed)
}

/// The three presets, by the names used throughout the bench harness.
pub fn by_name(name: &str, rows: usize, seed: u64) -> Option<Table> {
    match name {
        "dmv" | "dmv_like" => Some(dmv_like(rows, seed)),
        "kddcup98" | "kddcup98_like" | "kddcup" => Some(kddcup98_like(rows, seed)),
        "census" | "census_like" => Some(census_like(rows, seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dmv_like_shape() {
        let t = dmv_like(2_000, 1);
        assert_eq!(t.num_columns(), 11);
        assert_eq!(t.num_rows(), 2_000);
        let ndvs = t.ndvs();
        assert_eq!(*ndvs.iter().min().unwrap(), 2);
        assert_eq!(*ndvs.iter().max().unwrap(), 2_774);
    }

    #[test]
    fn kddcup98_like_shape() {
        let t = kddcup98_like(1_000, 2);
        assert_eq!(t.num_columns(), 100);
        let ndvs = t.ndvs();
        assert!(ndvs.iter().all(|&n| (2..=57).contains(&n)));
        assert_eq!(*ndvs.iter().min().unwrap(), 2);
        assert_eq!(*ndvs.iter().max().unwrap(), 57);
    }

    #[test]
    fn census_like_shape() {
        let t = census_like(1_000, 3);
        assert_eq!(t.num_columns(), 14);
        let ndvs = t.ndvs();
        assert_eq!(*ndvs.iter().min().unwrap(), 2);
        assert_eq!(*ndvs.iter().max().unwrap(), 123);
    }

    #[test]
    fn by_name_resolves_aliases() {
        assert!(by_name("dmv", 100, 0).is_some());
        assert!(by_name("kddcup", 100, 0).is_some());
        assert!(by_name("census_like", 100, 0).is_some());
        assert!(by_name("unknown", 100, 0).is_none());
    }
}
