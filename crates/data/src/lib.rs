//! # duet-data
//!
//! The data substrate of the Duet reproduction: dictionary-encoded
//! column-store tables, per-column statistics, CSV import/export and synthetic
//! generators shaped like the paper's evaluation datasets (DMV, Kddcup98,
//! Census).
//!
//! Every estimator in the workspace (Duet itself and all baselines) consumes a
//! [`Table`]: columns are dictionary-encoded so that range predicates become
//! contiguous value-id ranges, which is the discretized representation used by
//! Naru, UAE and Duet alike.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod column;
pub mod csv;
pub mod datasets;
pub mod stats;
pub mod table;
pub mod value;

pub use column::Column;
pub use stats::{histogram_distance, id_correlation, table_stats, ColumnStats};
pub use table::{Table, TableBuilder};
pub use value::{parse_value, Value};
