//! Multiple Predicates Supporting Networks (MPSN, paper §IV-F).
//!
//! When a query may carry more than one predicate on the same column, the
//! variable-length list of predicate encodings must be squashed into the
//! column's fixed-width input block before it reaches the autoregressive
//! network. The paper proposes three candidates and picks the MLP variant for
//! efficiency:
//!
//! * **MLP & vector sum** — embed each predicate with a small MLP and sum the
//!   embeddings (order-invariant);
//! * **Recurrent** — run the predicate sequence through a small recurrent
//!   network (the paper uses an LSTM; this reproduction uses a single-layer
//!   tanh RNN, which preserves the relevant trade-offs: sequential cost and
//!   order sensitivity);
//! * **Recursive** — `out = MLP(E(pred) || out)`, folded over the predicates.
//!
//! Every column owns an independent MPSN. For the MLP variant the paper also
//! describes a *merged* inference mode where all per-column MLPs are combined
//! into one block-diagonal network so a single forward pass embeds every
//! column at once; [`MergedMlpMpsn`] implements that acceleration.

use crate::config::MpsnKind;
use duet_nn::{
    rowvec_matmul_into, seeded_rng, Activation, ForwardWorkspace, InferLayer, Init, Layer, Linear,
    Matrix, Mlp, Param,
};
use rand::rngs::SmallRng;

/// Reusable scratch buffers for allocation-free MPSN embedding.
///
/// Owned by the caller (typically inside a
/// [`DuetWorkspace`](crate::model::DuetWorkspace)); every buffer reshapes on
/// the fly reusing its heap capacity, so embedding is allocation-free once
/// the buffers have warmed up to the widest column.
#[derive(Debug, Clone, Default)]
pub struct MpsnScratch {
    /// Workspace for the per-column MLP / recursive cell forward passes.
    nn: ForwardWorkspace,
    /// One-row input staging matrix for the recursive cell.
    row_in: Matrix,
    /// Recurrent hidden state.
    h: Vec<f32>,
    /// Recurrent pre-activation.
    a: Vec<f32>,
    /// Recurrent `h @ Wh` staging (kept separate from `a` so the summation
    /// order matches the allocating path bit for bit).
    t: Vec<f32>,
    /// Recursive previous output.
    prev: Vec<f32>,
}

impl MpsnScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A per-column MPSN instance.
// Variant sizes differ, but a model holds at most one per column, so boxing
// the larger variants would add a pointer chase per embed for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ColumnMpsn {
    /// MLP embedding + vector sum.
    Mlp(MlpMpsn),
    /// Recurrent (tanh RNN) embedding.
    Recurrent(RecurrentMpsn),
    /// Recursive embedding.
    Recursive(RecursiveMpsn),
}

impl ColumnMpsn {
    /// Create an MPSN of the requested kind for a column whose input block is
    /// `dim` wide.
    ///
    /// # Panics
    /// Panics if `kind` is [`MpsnKind::None`].
    pub fn new(kind: MpsnKind, dim: usize, hidden: usize, rng: &mut SmallRng) -> Self {
        match kind {
            MpsnKind::Mlp => ColumnMpsn::Mlp(MlpMpsn::new(dim, hidden, rng)),
            MpsnKind::Recurrent => ColumnMpsn::Recurrent(RecurrentMpsn::new(dim, hidden, rng)),
            MpsnKind::Recursive => ColumnMpsn::Recursive(RecursiveMpsn::new(dim, hidden, rng)),
            MpsnKind::None => panic!("MpsnKind::None has no network"),
        }
    }

    /// Embed a (possibly empty) list of predicate encodings into the column's
    /// input block. An empty list (wildcard column) embeds to all zeros.
    ///
    /// Allocating convenience wrapper over [`ColumnMpsn::embed_into`].
    pub fn embed(&self, preds: &[Vec<f32>]) -> Vec<f32> {
        let mut out = vec![0.0; self.dim()];
        if !preds.is_empty() {
            let encs = stack(preds);
            let mut ws = MpsnScratch::new();
            self.embed_into(&encs, &mut ws, &mut out);
        }
        out
    }

    /// Embed the stacked predicate encodings `encs` (one row per predicate,
    /// `dim` columns) into `out`, using only the scratch buffers in `ws` —
    /// allocation-free once warm and bit-identical to [`ColumnMpsn::embed`].
    ///
    /// An empty `encs` (wildcard column) writes all zeros.
    pub fn embed_into(&self, encs: &Matrix, ws: &mut MpsnScratch, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.dim());
        if encs.rows() == 0 {
            out.fill(0.0);
            return;
        }
        match self {
            ColumnMpsn::Mlp(m) => m.embed_into(encs, ws, out),
            ColumnMpsn::Recurrent(m) => m.embed_into(encs, ws, out),
            ColumnMpsn::Recursive(m) => m.embed_into(encs, ws, out),
        }
    }

    /// Accumulate parameter gradients for one embedding call: `grad_out` is
    /// the gradient of the loss w.r.t. the embedding returned by
    /// [`Self::embed`] for the same `preds`.
    pub fn accumulate_grad(&mut self, preds: &[Vec<f32>], grad_out: &[f32]) {
        if preds.is_empty() {
            return; // wildcard embeddings are constant zeros
        }
        match self {
            ColumnMpsn::Mlp(m) => m.accumulate_grad(preds, grad_out),
            ColumnMpsn::Recurrent(m) => m.accumulate_grad(preds, grad_out),
            ColumnMpsn::Recursive(m) => m.accumulate_grad(preds, grad_out),
        }
    }

    /// Visit the trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            ColumnMpsn::Mlp(m) => m.mlp.visit_params(f),
            ColumnMpsn::Recurrent(m) => m.visit_params(f),
            ColumnMpsn::Recursive(m) => m.cell.visit_params(f),
        }
    }

    /// Embedding width (equals the column's input block width).
    pub fn dim(&self) -> usize {
        match self {
            ColumnMpsn::Mlp(m) => m.dim,
            ColumnMpsn::Recurrent(m) => m.dim,
            ColumnMpsn::Recursive(m) => m.dim,
        }
    }
}

/// MLP & vector-sum MPSN: `embed(preds) = Σ_j MLP(pred_j)`.
#[derive(Debug, Clone)]
pub struct MlpMpsn {
    mlp: Mlp,
    dim: usize,
}

impl MlpMpsn {
    fn new(dim: usize, hidden: usize, rng: &mut SmallRng) -> Self {
        Self { mlp: Mlp::new(&[dim, hidden, hidden, dim], rng), dim }
    }

    /// `out = Σ_rows MLP(encs)`: run the stacked encodings through the MLP in
    /// one workspace-backed pass and sum the output rows (the vector-sum of
    /// the paper, replicated in `column_sums` order for bit-identity).
    fn embed_into(&self, encs: &Matrix, ws: &mut MpsnScratch, out: &mut [f32]) {
        let y = self.mlp.infer_into(encs, &mut ws.nn);
        out.fill(0.0);
        for row in y.rows_iter() {
            for (o, &x) in out.iter_mut().zip(row.iter()) {
                *o += x;
            }
        }
    }

    fn accumulate_grad(&mut self, preds: &[Vec<f32>], grad_out: &[f32]) {
        let batch = stack(preds);
        let _ = self.mlp.forward(&batch);
        // The sum over predicates broadcasts the same gradient to every row.
        let mut grad = Matrix::zeros(preds.len(), self.dim);
        for r in 0..preds.len() {
            grad.row_mut(r).copy_from_slice(grad_out);
        }
        let _ = self.mlp.backward(&grad);
    }

    /// Access to the underlying MLP (used by [`MergedMlpMpsn`]).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }
}

/// Recurrent MPSN: a single-layer tanh RNN over the predicate sequence
/// followed by a linear readout of the final hidden state.
#[derive(Debug, Clone)]
pub struct RecurrentMpsn {
    wx: Param,
    wh: Param,
    b: Param,
    wo: Param,
    bo: Param,
    dim: usize,
    hidden: usize,
}

impl RecurrentMpsn {
    fn new(dim: usize, hidden: usize, rng: &mut SmallRng) -> Self {
        Self {
            wx: Param::new(Init::XavierUniform.matrix(dim, hidden, rng)),
            wh: Param::new(Init::XavierUniform.matrix(hidden, hidden, rng)),
            b: Param::new(Matrix::zeros(1, hidden)),
            wo: Param::new(Init::XavierUniform.matrix(hidden, dim, rng)),
            bo: Param::new(Matrix::zeros(1, dim)),
            dim,
            hidden,
        }
    }

    /// Run the RNN, returning every hidden state (index 0 is the initial zero
    /// state).
    fn run(&self, preds: &[Vec<f32>]) -> Vec<Matrix> {
        let mut states = vec![Matrix::zeros(1, self.hidden)];
        for pred in preds {
            let x = Matrix::from_vec(1, self.dim, pred.clone());
            let mut a = x.matmul(&self.wx.data);
            a.add_assign(&states.last().expect("non-empty").matmul(&self.wh.data));
            a.add_row_vector(self.b.data.as_slice());
            a.as_mut_slice().iter_mut().for_each(|v| *v = v.tanh());
            states.push(a);
        }
        states
    }

    /// Run the tanh RNN over the stacked encodings and read out the final
    /// hidden state, keeping the state in flat scratch slices.
    ///
    /// `x @ Wx` and `h @ Wh` are computed into separate buffers and then
    /// added (instead of accumulating into one), so the floating-point
    /// summation order matches [`RecurrentMpsn::run`] exactly.
    fn embed_into(&self, encs: &Matrix, ws: &mut MpsnScratch, out: &mut [f32]) {
        ws.h.clear();
        ws.h.resize(self.hidden, 0.0);
        ws.a.clear();
        ws.a.resize(self.hidden, 0.0);
        ws.t.clear();
        ws.t.resize(self.hidden, 0.0);
        for r in 0..encs.rows() {
            rowvec_matmul_into(encs.row(r), &self.wx.data, &mut ws.a);
            rowvec_matmul_into(&ws.h, &self.wh.data, &mut ws.t);
            for (a, &t) in ws.a.iter_mut().zip(ws.t.iter()) {
                *a += t;
            }
            for (a, &b) in ws.a.iter_mut().zip(self.b.data.as_slice().iter()) {
                *a += b;
            }
            ws.a.iter_mut().for_each(|v| *v = v.tanh());
            std::mem::swap(&mut ws.h, &mut ws.a);
        }
        rowvec_matmul_into(&ws.h, &self.wo.data, out);
        for (o, &b) in out.iter_mut().zip(self.bo.data.as_slice().iter()) {
            *o += b;
        }
    }

    fn accumulate_grad(&mut self, preds: &[Vec<f32>], grad_out: &[f32]) {
        let states = self.run(preds);
        let last = states.last().expect("non-empty");
        let g = Matrix::from_vec(1, self.dim, grad_out.to_vec());
        // Readout layer.
        self.wo.grad.add_assign(&last.matmul_tn(&g));
        for (b, &d) in self.bo.grad.as_mut_slice().iter_mut().zip(g.as_slice()) {
            *b += d;
        }
        let mut dh = g.matmul_nt(&self.wo.data);
        // Back-propagation through time.
        for t in (0..preds.len()).rev() {
            let h_t = &states[t + 1];
            let h_prev = &states[t];
            // da = dh * (1 - h_t^2)
            let mut da = dh.clone();
            for (d, &h) in da.as_mut_slice().iter_mut().zip(h_t.as_slice()) {
                *d *= 1.0 - h * h;
            }
            let x = Matrix::from_vec(1, self.dim, preds[t].clone());
            self.wx.grad.add_assign(&x.matmul_tn(&da));
            self.wh.grad.add_assign(&h_prev.matmul_tn(&da));
            for (b, &d) in self.b.grad.as_mut_slice().iter_mut().zip(da.as_slice()) {
                *b += d;
            }
            dh = da.matmul_nt(&self.wh.data);
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wx);
        f(&mut self.wh);
        f(&mut self.b);
        f(&mut self.wo);
        f(&mut self.bo);
    }
}

/// Recursive MPSN: `out_t = MLP([pred_t ; out_{t-1}])`, with `out_0 = 0`.
#[derive(Debug, Clone)]
pub struct RecursiveMpsn {
    cell: Mlp,
    dim: usize,
}

impl RecursiveMpsn {
    fn new(dim: usize, hidden: usize, rng: &mut SmallRng) -> Self {
        Self { cell: Mlp::new(&[2 * dim, hidden, hidden, dim], rng), dim }
    }

    fn run(&self, preds: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut outs = vec![vec![0.0; self.dim]];
        for pred in preds {
            let prev = outs.last().expect("non-empty");
            let mut input = Vec::with_capacity(2 * self.dim);
            input.extend_from_slice(pred);
            input.extend_from_slice(prev);
            let out = self.cell.forward_inference(&Matrix::from_vec(1, 2 * self.dim, input));
            outs.push(out.into_vec());
        }
        outs
    }

    /// Fold the recursive cell over the stacked encodings:
    /// `out_t = MLP([enc_t ; out_{t-1}])`, staging each cell input in the
    /// scratch's one-row matrix.
    fn embed_into(&self, encs: &Matrix, ws: &mut MpsnScratch, out: &mut [f32]) {
        let dim = self.dim;
        ws.prev.clear();
        ws.prev.resize(dim, 0.0);
        for r in 0..encs.rows() {
            ws.row_in.reset(1, 2 * dim);
            let row = ws.row_in.row_mut(0);
            row[..dim].copy_from_slice(encs.row(r));
            row[dim..].copy_from_slice(&ws.prev);
            let y = self.cell.infer_into(&ws.row_in, &mut ws.nn);
            ws.prev.copy_from_slice(y.row(0));
        }
        out.copy_from_slice(&ws.prev);
    }

    fn accumulate_grad(&mut self, preds: &[Vec<f32>], grad_out: &[f32]) {
        let outs = self.run(preds);
        let mut grad = grad_out.to_vec();
        for t in (0..preds.len()).rev() {
            let prev = &outs[t];
            let mut input = Vec::with_capacity(2 * self.dim);
            input.extend_from_slice(&preds[t]);
            input.extend_from_slice(prev);
            let _ = self.cell.forward(&Matrix::from_vec(1, 2 * self.dim, input));
            let gin = self.cell.backward(&Matrix::from_vec(1, self.dim, grad.clone()));
            // The second half of the input gradient flows to out_{t-1}.
            grad = gin.as_slice()[self.dim..].to_vec();
        }
    }
}

/// Build one MPSN per column.
pub fn build_mpsns(
    kind: MpsnKind,
    block_widths: &[usize],
    hidden: usize,
    seed: u64,
) -> Vec<ColumnMpsn> {
    if kind == MpsnKind::None {
        return Vec::new();
    }
    let mut rng = seeded_rng(seed);
    block_widths.iter().map(|&dim| ColumnMpsn::new(kind, dim, hidden, &mut rng)).collect()
}

/// The merged-MLP acceleration (paper §IV-F, "Parallel Acceleration for MLP
/// MPSN"): all per-column MLP MPSNs are fused into one block-diagonal MLP so a
/// single forward pass embeds every column's predicates at once.
#[derive(Debug, Clone)]
pub struct MergedMlpMpsn {
    /// One `(weight, bias)` pair per fused layer; weights are block-diagonal.
    layers: Vec<(Matrix, Vec<f32>)>,
    block_offsets: Vec<Vec<usize>>, // per layer, per column offset
    dims: Vec<usize>,
}

impl MergedMlpMpsn {
    /// Fuse per-column MLP MPSNs. All columns must use the same number of
    /// layers (they do, by construction in [`build_mpsns`]).
    ///
    /// # Panics
    /// Panics if `mpsns` is empty or contains a non-MLP variant.
    pub fn from_columns(mpsns: &[ColumnMpsn]) -> Self {
        assert!(!mpsns.is_empty(), "cannot merge zero MPSNs");
        let mlps: Vec<&Mlp> = mpsns
            .iter()
            .map(|m| match m {
                ColumnMpsn::Mlp(m) => m.mlp(),
                _ => panic!("merged acceleration only applies to MLP MPSNs"),
            })
            .collect();
        let n_layers = mlps[0].linears().len();
        assert!(mlps.iter().all(|m| m.linears().len() == n_layers));

        let dims: Vec<usize> = mpsns.iter().map(|m| m.dim()).collect();
        let mut layers = Vec::with_capacity(n_layers);
        let mut block_offsets = Vec::with_capacity(n_layers + 1);
        for layer_idx in 0..n_layers {
            let linears: Vec<&Linear> = mlps.iter().map(|m| &m.linears()[layer_idx]).collect();
            let total_in: usize = linears.iter().map(|l| l.in_features()).sum();
            let total_out: usize = linears.iter().map(|l| l.out_features()).sum();
            let mut w = Matrix::zeros(total_in, total_out);
            let mut b = vec![0.0f32; total_out];
            let mut in_off = 0;
            let mut out_off = 0;
            let mut in_offsets = Vec::with_capacity(linears.len());
            for l in &linears {
                in_offsets.push(in_off);
                // Copy the column's weight block onto the diagonal.
                for i in 0..l.in_features() {
                    for j in 0..l.out_features() {
                        w.set(in_off + i, out_off + j, l.weight().get(i, j));
                    }
                }
                b[out_off..out_off + l.out_features()].copy_from_slice(l.bias().as_slice());
                in_off += l.in_features();
                out_off += l.out_features();
            }
            block_offsets.push(in_offsets);
            layers.push((w, b));
        }
        // Output offsets of the final layer (per column).
        let mut final_offsets = Vec::with_capacity(dims.len());
        let mut off = 0;
        for &d in &dims {
            final_offsets.push(off);
            off += d;
        }
        block_offsets.push(final_offsets);
        Self { layers, block_offsets, dims }
    }

    /// Embed every column's predicate lists in one fused pass.
    ///
    /// `preds_per_col[c]` holds the encodings of column `c`'s predicates; the
    /// result is the concatenation of every column's embedding (identical to
    /// calling each [`ColumnMpsn::embed`] separately and concatenating).
    ///
    /// Allocating convenience wrapper over [`MergedMlpMpsn::embed_all_into`].
    pub fn embed_all(&self, preds_per_col: &[Vec<Vec<f32>>]) -> Vec<f32> {
        let mut result = vec![0.0f32; self.dims.iter().sum()];
        let mut ws = ForwardWorkspace::new();
        self.embed_all_into(preds_per_col, &mut ws, &mut result);
        result
    }

    /// [`MergedMlpMpsn::embed_all`] into a caller-provided output slice,
    /// staging every intermediate in the workspace — allocation-free once the
    /// workspace has warmed up to this network's widths.
    pub fn embed_all_into(
        &self,
        preds_per_col: &[Vec<Vec<f32>>],
        ws: &mut ForwardWorkspace,
        out: &mut [f32],
    ) {
        assert_eq!(preds_per_col.len(), self.dims.len(), "column count mismatch");
        let total: usize = self.dims.iter().sum();
        assert_eq!(out.len(), total, "output length mismatch");
        out.fill(0.0);
        let max_preds = preds_per_col.iter().map(|p| p.len()).max().unwrap_or(0);
        if max_preds == 0 {
            return;
        }
        ws.rewind();
        // Row k holds every column's k-th predicate (or zeros). Running the
        // block-diagonal MLP over these rows and masking out the slots where a
        // column has no k-th predicate reproduces the per-column sum exactly.
        {
            let (_cur, _next, aux) = ws.split();
            aux.reset(max_preds, self.layers[0].0.rows());
            for (c, preds) in preds_per_col.iter().enumerate() {
                let off = self.block_offsets[0][c];
                for (k, p) in preds.iter().enumerate() {
                    aux.row_mut(k)[off..off + p.len()].copy_from_slice(p);
                }
            }
        }
        let last = self.layers.len() - 1;
        for (i, (w, b)) in self.layers.iter().enumerate() {
            let act = if i < last { Activation::Relu } else { Activation::Identity };
            {
                let (cur, next, aux) = ws.split();
                let x: &Matrix = if i == 0 { aux } else { cur };
                x.addmm_bias_act_into(w, Some(b), act, next);
            }
            ws.flip();
        }
        // Mask and sum over the predicate-slot rows.
        let y = ws.output();
        let final_offsets = &self.block_offsets[self.layers.len()];
        for (c, preds) in preds_per_col.iter().enumerate() {
            let off = final_offsets[c];
            let dim = self.dims[c];
            for k in 0..preds.len() {
                let row = y.row(k);
                for d in 0..dim {
                    out[off + d] += row[off + d];
                }
            }
        }
    }
}

fn stack(rows: &[Vec<f32>]) -> Matrix {
    let cols = rows.first().map(|r| r.len()).unwrap_or(0);
    let mut m = Matrix::zeros(rows.len(), cols);
    for (i, r) in rows.iter().enumerate() {
        m.row_mut(i).copy_from_slice(r);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred_vec(dim: usize, seed: f32) -> Vec<f32> {
        (0..dim).map(|i| ((i as f32 + 1.0) * seed).sin()).collect()
    }

    #[test]
    fn wildcard_embeds_to_zero_for_all_variants() {
        let mut rng = seeded_rng(1);
        for kind in [MpsnKind::Mlp, MpsnKind::Recurrent, MpsnKind::Recursive] {
            let m = ColumnMpsn::new(kind, 8, 16, &mut rng);
            assert_eq!(m.embed(&[]), vec![0.0; 8], "{kind:?}");
        }
    }

    #[test]
    fn mlp_embedding_is_order_invariant_but_recurrent_is_not() {
        let mut rng = seeded_rng(2);
        let a = pred_vec(8, 0.3);
        let b = pred_vec(8, 1.7);
        let mlp = ColumnMpsn::new(MpsnKind::Mlp, 8, 16, &mut rng);
        let e1 = mlp.embed(&[a.clone(), b.clone()]);
        let e2 = mlp.embed(&[b.clone(), a.clone()]);
        for (x, y) in e1.iter().zip(e2.iter()) {
            assert!((x - y).abs() < 1e-5, "MLP MPSN must be order-invariant");
        }
        let rec = ColumnMpsn::new(MpsnKind::Recurrent, 8, 16, &mut rng);
        let r1 = rec.embed(&[a.clone(), b.clone()]);
        let r2 = rec.embed(&[b, a]);
        let diff: f32 = r1.iter().zip(r2.iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4, "recurrent MPSN is expected to be order-sensitive");
    }

    #[test]
    fn gradients_accumulate_for_all_variants() {
        let mut rng = seeded_rng(3);
        for kind in [MpsnKind::Mlp, MpsnKind::Recurrent, MpsnKind::Recursive] {
            let mut m = ColumnMpsn::new(kind, 6, 12, &mut rng);
            let preds = vec![pred_vec(6, 0.5), pred_vec(6, 0.9)];
            let grad = vec![0.1f32; 6];
            m.accumulate_grad(&preds, &grad);
            let mut total = 0.0f32;
            m.visit_params(&mut |p| total += p.grad.max_abs());
            assert!(total > 0.0, "{kind:?} accumulated no gradient");
            // Wildcards never contribute gradient.
            let mut m2 = ColumnMpsn::new(kind, 6, 12, &mut rng);
            m2.accumulate_grad(&[], &grad);
            let mut total2 = 0.0f32;
            m2.visit_params(&mut |p| total2 += p.grad.max_abs());
            assert_eq!(total2, 0.0);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // `idx` addresses the perturbed weight and `analytic` in lockstep
    fn mlp_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(4);
        let mut m = ColumnMpsn::new(MpsnKind::Mlp, 4, 8, &mut rng);
        let preds = vec![pred_vec(4, 0.4), pred_vec(4, 1.1)];
        // Loss = dot(embed(preds), w) for a fixed w.
        let w: Vec<f32> = vec![0.3, -0.2, 0.5, 0.1];
        m.accumulate_grad(&preds, &w);
        let mut analytic = Vec::new();
        m.visit_params(&mut |p| {
            if analytic.is_empty() {
                analytic = p.grad.as_slice()[..4].to_vec();
            }
        });
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut loss = [0.0f32; 2];
            for (s, sign) in [1.0f32, -1.0].iter().enumerate() {
                let mut first = true;
                m.visit_params(&mut |p| {
                    if first {
                        p.data.as_mut_slice()[idx] += sign * eps;
                        first = false;
                    }
                });
                let e = m.embed(&preds);
                loss[s] = e.iter().zip(&w).map(|(a, b)| a * b).sum();
                let mut first = true;
                m.visit_params(&mut |p| {
                    if first {
                        p.data.as_mut_slice()[idx] -= sign * eps;
                        first = false;
                    }
                });
            }
            let numeric = (loss[0] - loss[1]) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 2e-2 * (1.0 + analytic[idx].abs()),
                "idx {idx}: analytic {}, numeric {numeric}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn merged_mlp_matches_per_column_embeddings() {
        let widths = vec![7, 5, 9];
        let mpsns = build_mpsns(MpsnKind::Mlp, &widths, 16, 77);
        let merged = MergedMlpMpsn::from_columns(&mpsns);
        let preds_per_col =
            vec![vec![pred_vec(7, 0.2), pred_vec(7, 0.8)], vec![], vec![pred_vec(9, 1.5)]];
        let fused = merged.embed_all(&preds_per_col);
        let mut expected = Vec::new();
        for (m, preds) in mpsns.iter().zip(&preds_per_col) {
            expected.extend(m.embed(preds));
        }
        assert_eq!(fused.len(), expected.len());
        for (a, b) in fused.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-4, "merged {a} vs per-column {b}");
        }
    }

    #[test]
    fn build_mpsns_none_is_empty() {
        assert!(build_mpsns(MpsnKind::None, &[4, 4], 8, 1).is_empty());
        assert_eq!(build_mpsns(MpsnKind::Mlp, &[4, 4], 8, 1).len(), 2);
    }
}
