//! # duet-core
//!
//! The Duet cardinality estimator (Zhang et al., ICDE 2024): a hybrid learned
//! estimator that feeds **predicate information** directly into a masked
//! autoregressive network so that any conjunctive range query is estimated
//! with a **single forward pass** — no progressive sampling, deterministic
//! results, and a fully differentiable estimation path that allows the
//! Q-Error of historical queries to be used as an additional supervised loss.
//!
//! The crate is organized around the paper's sections:
//!
//! * [`encoding`] — predicate encoding (binary value bits + one-hot operator,
//!   wildcard skipping), §IV-C;
//! * [`virtual_table`] — Algorithm 1, sampling virtual tuples during SGD;
//! * [`mpsn`] — Multiple Predicates Supporting Networks and the merged-MLP
//!   acceleration, §IV-F;
//! * [`model`] — the network and the sampling-free estimation of Algorithm 3;
//! * [`trainer`] — data-driven and hybrid training (Algorithm 2, the
//!   `L = L_data + λ·log2(QError+1)` loss);
//! * [`estimator`] — the user-facing [`DuetEstimator`] implementing
//!   [`duet_query::CardinalityEstimator`];
//! * [`persist`] — weight checkpointing.
//!
//! ```no_run
//! use duet_core::{DuetConfig, DuetEstimator};
//! use duet_data::datasets::census_like;
//! use duet_query::{CardinalityEstimator, WorkloadSpec};
//!
//! let table = census_like(10_000, 42);
//! let mut duet = DuetEstimator::train_data_only(&table, &DuetConfig::small(), 42);
//! let workload = WorkloadSpec::random(&table, 100, 1234).generate(&table);
//! let estimate = duet.estimate(&workload[0]);
//! println!("{estimate}");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod encoding;
pub mod estimator;
pub mod model;
pub mod mpsn;
pub mod persist;
pub mod trainer;
pub mod virtual_table;

pub use config::{DuetConfig, MpsnKind};
pub use duet_nn::{SoftmaxMode, WeightMode};
pub use encoding::{Encoder, IdPredicate};
pub use estimator::{DuetEstimator, EstimateBreakdown};
pub use model::{query_to_id_predicates, DuetModel, DuetWorkspace, WorkspacePool};
pub use mpsn::{build_mpsns, ColumnMpsn, MergedMlpMpsn, MpsnScratch};
pub use persist::{load_weights, save_weights, verify_checkpoint, CheckpointError};
pub use trainer::{
    data_forward, measure_training_throughput, query_forward, train_model, train_model_with_eval,
    train_step, EpochStats, ModelParams, PreparedQuery, TrainStepScratch, TrainingWorkload,
};
pub use virtual_table::{sample_predicate, sample_virtual_batch, SamplerConfig, VirtualTuple};
