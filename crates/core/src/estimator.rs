//! The user-facing Duet estimator: a trained model plus the table schema
//! needed to translate query literals, implementing the common
//! [`CardinalityEstimator`] trait.

use crate::config::DuetConfig;
use crate::model::{query_to_id_predicates, DuetModel, DuetWorkspace};
use crate::trainer::{train_model, EpochStats, TrainingWorkload};
use duet_data::Table;
use duet_query::{CardinalityEstimator, Query};
use std::time::{Duration, Instant};

/// Timing breakdown of one estimation call (used by the scalability
/// experiment, Figure 6, which reports encoding vs. inference time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateBreakdown {
    /// Estimated cardinality.
    pub cardinality: f64,
    /// Time spent translating and encoding predicates (including the MPSN).
    pub encode_time: Duration,
    /// Time spent in the network forward pass and the probability masking.
    pub inference_time: Duration,
}

/// A trained Duet cardinality estimator.
#[derive(Debug, Clone)]
pub struct DuetEstimator {
    model: DuetModel,
    schema: Table,
    num_rows: usize,
    label: String,
}

impl DuetEstimator {
    /// Wrap an already-trained model.
    pub fn from_model(model: DuetModel, table: &Table, label: impl Into<String>) -> Self {
        Self { model, schema: table.schema_only(), num_rows: table.num_rows(), label: label.into() }
    }

    /// Train purely data-driven (the paper's `DuetD` ablation).
    pub fn train_data_only(table: &Table, config: &DuetConfig, seed: u64) -> Self {
        let model = train_model(table, config, None, seed, |_| {});
        Self::from_model(model, table, "duet_d")
    }

    /// Train data-driven while recording per-epoch statistics.
    pub fn train_data_only_with_stats(
        table: &Table,
        config: &DuetConfig,
        seed: u64,
        mut on_epoch: impl FnMut(&EpochStats),
    ) -> Self {
        let model = train_model(table, config, None, seed, |s| on_epoch(s));
        Self::from_model(model, table, "duet_d")
    }

    /// Hybrid training on the table plus a labelled historical workload
    /// (the paper's full `Duet`).
    pub fn train_hybrid(
        table: &Table,
        queries: &[Query],
        cardinalities: &[u64],
        config: &DuetConfig,
        seed: u64,
    ) -> Self {
        Self::train_hybrid_with_stats(table, queries, cardinalities, config, seed, |_| {})
    }

    /// Hybrid training with per-epoch statistics.
    pub fn train_hybrid_with_stats(
        table: &Table,
        queries: &[Query],
        cardinalities: &[u64],
        config: &DuetConfig,
        seed: u64,
        mut on_epoch: impl FnMut(&EpochStats),
    ) -> Self {
        let workload = TrainingWorkload { queries, cardinalities };
        let model = train_model(table, config, Some(workload), seed, |s| on_epoch(s));
        Self::from_model(model, table, "duet")
    }

    /// Rebuild an estimator from its architecture description plus a weight
    /// checkpoint produced by [`crate::persist::save_weights`] — the
    /// lazy-reload path of a serving model tier that evicted the resident
    /// instance to reclaim memory.
    ///
    /// The architecture is a deterministic function of `(schema, config)` —
    /// mask construction uses no randomness — so a freshly initialized model
    /// has exactly the shapes the checkpoint expects, and loading restores
    /// the parameters bit for bit: estimates from the rebuilt instance are
    /// **bit-identical** to the evicted one's. `schema` may be (and in the
    /// tier is) a zero-row [`Table::schema_only`] snapshot; `num_rows` is
    /// the trained row count the evictor recorded.
    pub fn rebuild_from_checkpoint(
        schema: &Table,
        num_rows: usize,
        config: &DuetConfig,
        label: impl Into<String>,
        checkpoint: &[u8],
    ) -> Result<Self, crate::persist::CheckpointError> {
        let model = DuetModel::new(schema, config, 0);
        let mut est = Self { model, schema: schema.schema_only(), num_rows, label: label.into() };
        crate::persist::load_weights(&mut est, checkpoint)?;
        Ok(est)
    }

    /// The underlying model.
    pub fn model(&self) -> &DuetModel {
        &self.model
    }

    /// Mutable access to the underlying model (fine-tuning, persistence).
    pub fn model_mut(&mut self) -> &mut DuetModel {
        &mut self.model
    }

    /// The zero-row schema table used to translate literals.
    pub fn schema(&self) -> &Table {
        &self.schema
    }

    /// Number of rows of the table the estimator was trained on.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Change the reported name (e.g. to distinguish ablations).
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// Estimate with a timing breakdown into encoding and inference phases.
    pub fn estimate_with_breakdown(&self, query: &Query) -> EstimateBreakdown {
        let encode_started = Instant::now();
        let preds = query_to_id_predicates(&self.schema, query);
        let intervals = query.column_intervals(&self.schema);
        let input = self.model.row_input(&preds);
        let encode_time = encode_started.elapsed();

        let infer_started = Instant::now();
        let input = duet_nn::Matrix::from_vec(1, self.model.encoder().total_width(), input);
        let logits = self.model.forward_inference(&input);
        let selectivity = self.model.selectivity_from_logits(logits.row(0), &intervals);
        let inference_time = infer_started.elapsed();

        EstimateBreakdown {
            cardinality: selectivity * self.num_rows as f64,
            encode_time,
            inference_time,
        }
    }

    /// Estimate a batch of queries with **one** `N×W` forward pass through
    /// the backbone instead of `N` single-row passes.
    ///
    /// Because the forward pass is row-independent, every returned value is
    /// bit-identical to the corresponding single-query
    /// [`CardinalityEstimator::estimate`] result; batching only changes
    /// throughput. This is the inference path the `duet-serve` micro-batcher
    /// coalesces concurrent requests into.
    pub fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        let rows: Vec<_> =
            queries.iter().map(|q| query_to_id_predicates(&self.schema, q)).collect();
        let intervals: Vec<_> = queries.iter().map(|q| q.column_intervals(&self.schema)).collect();
        self.estimate_encoded_batch(&rows, &intervals)
    }

    /// [`DuetEstimator::estimate_batch`] for queries whose id-space
    /// predicates and column intervals were already computed (via
    /// [`query_to_id_predicates`] / [`Query::column_intervals`] against this
    /// estimator's schema).
    ///
    /// Callers that need the encoding for their own purposes — like the
    /// `duet-serve` result cache, which keys on it — use this to avoid
    /// encoding every query twice.
    pub fn estimate_encoded_batch(
        &self,
        rows: &[Vec<Vec<crate::encoding::IdPredicate>>],
        intervals: &[Vec<(u32, u32)>],
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.estimate_encoded_batch_with(rows, intervals, &mut DuetWorkspace::new(), &mut out);
        out
    }
    /// [`DuetEstimator::estimate_encoded_batch`] staging every intermediate
    /// in a caller-provided [`DuetWorkspace`] and writing the cardinalities
    /// into `out` (cleared first).
    ///
    /// This is the serving hot path: a `duet-serve` shard worker owns one
    /// workspace per table for its whole lifetime (see
    /// [`crate::WorkspacePool`]), so steady-state batched estimation performs
    /// zero heap allocation — including above the kernels' parallelism
    /// threshold, where the forward pass fans out over the process-wide
    /// persistent [`duet_nn::ComputePool`] shared by every caller (trainer,
    /// shard workers, benches). Results are bit-identical to the allocating
    /// variant and to per-query [`CardinalityEstimator::estimate`] calls,
    /// whatever kernel or parallelism the dispatch picks.
    ///
    /// Generic over the row/interval holders (anything that derefs to the
    /// per-row slices), so a serving queue's own request structs can feed the
    /// batch pass without re-gathering into intermediate containers.
    pub fn estimate_encoded_batch_with<R, I>(
        &self,
        rows: &[R],
        intervals: &[I],
        ws: &mut DuetWorkspace,
        out: &mut Vec<f64>,
    ) where
        R: AsRef<[Vec<crate::encoding::IdPredicate>]>,
        I: AsRef<[(u32, u32)]>,
    {
        self.model.estimate_selectivity_batch_with(rows, intervals, ws, out);
        for sel in out.iter_mut() {
            *sel *= self.num_rows as f64;
        }
    }

    /// [`DuetEstimator::estimate_batch`] with a caller-provided workspace:
    /// queries are translated against the schema (which allocates their
    /// id-space encodings), but the entire forward pass reuses `ws`.
    pub fn estimate_batch_with(
        &self,
        queries: &[Query],
        ws: &mut DuetWorkspace,
        out: &mut Vec<f64>,
    ) {
        let rows: Vec<_> =
            queries.iter().map(|q| query_to_id_predicates(&self.schema, q)).collect();
        let intervals: Vec<_> = queries.iter().map(|q| q.column_intervals(&self.schema)).collect();
        self.estimate_encoded_batch_with(&rows, &intervals, ws, out);
    }

    /// Estimate a whole workload (convenience for the experiment harness).
    ///
    /// Routed through [`DuetEstimator::estimate_batch`] so the per-query and
    /// batched paths cannot drift apart.
    pub fn estimate_many(&self, queries: &[Query]) -> Vec<f64> {
        self.estimate_batch(queries)
    }

    fn estimate_query(&self, query: &Query) -> f64 {
        let preds = query_to_id_predicates(&self.schema, query);
        let intervals = query.column_intervals(&self.schema);
        let selectivity = self.model.estimate_selectivity(&preds, &intervals);
        selectivity * self.num_rows as f64
    }
}

impl CardinalityEstimator for DuetEstimator {
    fn name(&self) -> &str {
        &self.label
    }

    fn estimate(&mut self, query: &Query) -> f64 {
        self.estimate_query(query)
    }

    fn size_bytes(&self) -> usize {
        self.model.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_data::datasets::census_like;
    use duet_query::{exact_cardinality, q_error, QErrorSummary, WorkloadSpec};

    fn trained(rows: usize, epochs: usize) -> (Table, DuetEstimator) {
        let table = census_like(rows, 31);
        let cfg = DuetConfig::small().with_epochs(epochs);
        let est = DuetEstimator::train_data_only(&table, &cfg, 11);
        (table, est)
    }

    #[test]
    fn estimates_are_deterministic_and_bounded() {
        let (table, mut est) = trained(600, 2);
        let queries = WorkloadSpec::random(&table, 30, 99).generate(&table);
        for q in &queries {
            let a = est.estimate(q);
            let b = est.estimate(q);
            assert_eq!(a, b, "Duet must be deterministic");
            assert!(a >= 0.0 && a <= table.num_rows() as f64 + 1e-6);
        }
    }

    #[test]
    fn training_improves_over_untrained_model() {
        let table = census_like(1_500, 32);
        let cfg = DuetConfig::small().with_epochs(5);
        let queries = WorkloadSpec::random(&table, 60, 7).generate(&table);
        let truths: Vec<u64> = queries.iter().map(|q| exact_cardinality(&table, q)).collect();

        let untrained_model = DuetModel::new(&table, &cfg, 1);
        let mut untrained = DuetEstimator::from_model(untrained_model, &table, "untrained");
        let mut trained = DuetEstimator::train_data_only(&table, &cfg, 1);

        let err = |est: &mut DuetEstimator| {
            let errors: Vec<f64> = queries
                .iter()
                .zip(&truths)
                .map(|(q, &t)| q_error(est.estimate(q), t as f64))
                .collect();
            QErrorSummary::from_errors(&errors).mean
        };
        let e_untrained = err(&mut untrained);
        let e_trained = err(&mut trained);
        assert!(
            e_trained < e_untrained,
            "training should reduce mean Q-Error: untrained {e_untrained}, trained {e_trained}"
        );
    }

    #[test]
    fn breakdown_reports_nonzero_phases() {
        let (table, est) = trained(300, 1);
        let q = WorkloadSpec::random(&table, 1, 5).generate(&table).remove(0);
        let b = est.estimate_with_breakdown(&q);
        assert!(b.cardinality >= 0.0);
        assert!(b.encode_time.as_nanos() > 0);
        assert!(b.inference_time.as_nanos() > 0);
    }

    #[test]
    fn trait_object_usage_works() {
        let (table, est) = trained(300, 1);
        let mut boxed: Box<dyn CardinalityEstimator> = Box::new(est);
        assert_eq!(boxed.name(), "duet_d");
        let q = WorkloadSpec::random(&table, 1, 3).generate(&table).remove(0);
        let _ = boxed.estimate(&q);
        assert!(boxed.size_bytes() > 0);
    }

    #[test]
    fn estimate_many_matches_single_estimates() {
        let (table, mut est) = trained(300, 1);
        let queries = WorkloadSpec::random(&table, 10, 4).generate(&table);
        let batch = est.estimate_many(&queries);
        for (q, &b) in queries.iter().zip(&batch) {
            assert_eq!(est.estimate(q), b);
        }
    }

    #[test]
    fn estimate_batch_is_bit_identical_to_single_queries() {
        let (table, mut est) = trained(400, 2);
        let queries = WorkloadSpec::random(&table, 37, 13).generate(&table);
        let batch = est.estimate_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, &b) in queries.iter().zip(&batch) {
            assert_eq!(est.estimate(q), b, "batched estimate must be bit-identical");
        }
        assert!(est.estimate_batch(&[]).is_empty());
    }

    #[test]
    fn estimate_batch_is_bit_identical_with_mpsn() {
        use crate::config::MpsnKind;
        let table = census_like(300, 8);
        let cfg = DuetConfig::small().with_epochs(1).with_mpsn(MpsnKind::Mlp, 2);
        let mut est = DuetEstimator::train_data_only(&table, &cfg, 5);
        let queries = WorkloadSpec::random(&table, 12, 21).generate(&table);
        let batch = est.estimate_batch(&queries);
        for (q, &b) in queries.iter().zip(&batch) {
            assert_eq!(est.estimate(q), b, "MPSN batched estimate must be bit-identical");
        }
    }
}
