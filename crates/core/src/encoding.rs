//! Predicate encoding (paper §IV-C "Encoding").
//!
//! Every column `i` contributes one fixed-width *input block* to the
//! autoregressive network:
//!
//! ```text
//! [ binary(value id)  |  one-hot(predicate operator) ]
//!      value_bits(i)              5
//! ```
//!
//! * the literal's dictionary id is binary-encoded with `ceil(log2(ndv))`
//!   bits (the paper's "binary encoding" choice; columns with very large
//!   domains would use an embedding instead — the bit width here stays ≤ 12
//!   for all evaluated datasets so binary encoding suffices);
//! * the operator is one-hot over `{=, >, <, >=, <=}`;
//! * an unconstrained column (wildcard) sets both parts to all zeros,
//!   mirroring Naru's wildcard skipping: a valid predicate always has exactly
//!   one operator bit set, so the all-zero pattern is unambiguous.

use duet_data::Table;
use duet_query::PredOp;
use serde::{Deserialize, Serialize};

/// Number of predicate operators (width of the one-hot operator encoding).
pub const NUM_OPS: usize = 5;

/// A single encoded predicate in id space: the operator and the literal's
/// dictionary id on some column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdPredicate {
    /// Predicate operator.
    pub op: PredOp,
    /// Literal value id in the column's dictionary.
    pub value_id: u32,
}

/// Per-column encoder derived from a table's dictionaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Encoder {
    value_bits: Vec<usize>,
    ndvs: Vec<usize>,
}

impl Encoder {
    /// Build an encoder for `table`.
    pub fn new(table: &Table) -> Self {
        let ndvs = table.ndvs();
        let value_bits = ndvs.iter().map(|&ndv| bits_for(ndv)).collect();
        Self { value_bits, ndvs }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.ndvs.len()
    }

    /// Number of distinct values of column `col`.
    pub fn ndv(&self, col: usize) -> usize {
        self.ndvs[col]
    }

    /// Number of value bits used for column `col`.
    pub fn value_bits(&self, col: usize) -> usize {
        self.value_bits[col]
    }

    /// Width of column `col`'s input block.
    pub fn block_width(&self, col: usize) -> usize {
        self.value_bits[col] + NUM_OPS
    }

    /// Widths of every column's input block (the MADE's `input_block_sizes`).
    pub fn block_widths(&self) -> Vec<usize> {
        (0..self.num_columns()).map(|c| self.block_width(c)).collect()
    }

    /// Per-column output sizes (the MADE's `output_block_sizes`).
    pub fn output_sizes(&self) -> Vec<usize> {
        self.ndvs.clone()
    }

    /// [`Encoder::output_sizes`] as a borrowed slice — the allocation-free
    /// variant the per-row probability masking uses on the hot path.
    pub fn output_sizes_ref(&self) -> &[usize] {
        &self.ndvs
    }

    /// Total input width across all columns.
    pub fn total_width(&self) -> usize {
        (0..self.num_columns()).map(|c| self.block_width(c)).sum()
    }

    /// Encode one predicate of column `col` into `out` (length
    /// [`Self::block_width`]). `out` is overwritten.
    pub fn encode_predicate_into(&self, col: usize, pred: &IdPredicate, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.block_width(col));
        let bits = self.value_bits[col];
        debug_assert!((pred.value_id as usize) < self.ndvs[col].max(1));
        for (b, slot) in out.iter_mut().take(bits).enumerate() {
            *slot = ((pred.value_id >> b) & 1) as f32;
        }
        for (k, slot) in out.iter_mut().skip(bits).take(NUM_OPS).enumerate() {
            *slot = if k == pred.op.index() { 1.0 } else { 0.0 };
        }
    }

    /// Encode one predicate, allocating the output.
    pub fn encode_predicate(&self, col: usize, pred: &IdPredicate) -> Vec<f32> {
        let mut out = vec![0.0; self.block_width(col)];
        self.encode_predicate_into(col, pred, &mut out);
        out
    }

    /// The wildcard (no predicate) encoding of a column: all zeros.
    pub fn wildcard(&self, col: usize) -> Vec<f32> {
        vec![0.0; self.block_width(col)]
    }

    /// Offset of column `col`'s block within the concatenated input vector.
    pub fn block_offset(&self, col: usize) -> usize {
        (0..col).map(|c| self.block_width(c)).sum()
    }
}

/// Bits needed to represent ids `0..ndv` (at least 1).
fn bits_for(ndv: usize) -> usize {
    let mut bits = 0;
    let mut x = ndv.saturating_sub(1);
    while x > 0 {
        bits += 1;
        x >>= 1;
    }
    bits.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_data::datasets::census_like;

    #[test]
    fn bits_for_covers_domain() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
        assert_eq!(bits_for(2774), 12);
    }

    #[test]
    fn block_layout_is_consistent() {
        let t = census_like(200, 1);
        let enc = Encoder::new(&t);
        assert_eq!(enc.num_columns(), 14);
        assert_eq!(enc.total_width(), enc.block_widths().iter().sum::<usize>());
        let mut off = 0;
        for c in 0..enc.num_columns() {
            assert_eq!(enc.block_offset(c), off);
            off += enc.block_width(c);
            assert_eq!(enc.block_width(c), enc.value_bits(c) + NUM_OPS);
            assert_eq!(enc.output_sizes()[c], enc.ndv(c));
        }
    }

    #[test]
    fn predicate_encoding_sets_binary_and_onehot_bits() {
        let t = census_like(200, 2);
        let enc = Encoder::new(&t);
        let pred = IdPredicate { op: PredOp::Ge, value_id: 5 };
        let v = enc.encode_predicate(0, &pred);
        let bits = enc.value_bits(0);
        // 5 = 0b101.
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], 1.0);
        // Exactly one operator bit set, at the Ge index.
        let ops = &v[bits..];
        assert_eq!(ops.iter().filter(|&&x| x == 1.0).count(), 1);
        assert_eq!(ops[PredOp::Ge.index()], 1.0);
    }

    #[test]
    fn wildcard_is_all_zero_and_distinct_from_any_predicate() {
        let t = census_like(200, 3);
        let enc = Encoder::new(&t);
        let w = enc.wildcard(4);
        assert!(w.iter().all(|&x| x == 0.0));
        for op in PredOp::ALL {
            let p = enc.encode_predicate(4, &IdPredicate { op, value_id: 0 });
            assert_ne!(p, w, "a real predicate must never collide with the wildcard");
        }
    }

    #[test]
    fn encode_into_matches_alloc_version() {
        let t = census_like(100, 4);
        let enc = Encoder::new(&t);
        let pred = IdPredicate { op: PredOp::Lt, value_id: 3 };
        let a = enc.encode_predicate(2, &pred);
        let mut b = vec![9.0; enc.block_width(2)];
        enc.encode_predicate_into(2, &pred, &mut b);
        assert_eq!(a, b);
    }
}
