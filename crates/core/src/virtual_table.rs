//! Virtual-table sampling (paper §IV-B/§IV-C, Algorithm 1).
//!
//! Duet does not learn `P(C_i | x_<i)` from raw tuples the way Naru does.
//! Instead it learns `P(C_i | P_<i)` from *virtual tuples*: for every real
//! tuple `x` drawn during SGD, each column is given a randomly chosen
//! predicate `(op, v)` that `x` satisfies, so the network sees predicates as
//! conditioning information and the real tuple's values remain the labels.
//!
//! The sampler below is the vectorized equivalent of the paper's Algorithm 1:
//! an anchor batch is replicated `µ` times, every column of every replica is
//! assigned an operator (or a wildcard), and the literal is drawn uniformly
//! from the id range that keeps the anchor tuple satisfying the predicate.

use crate::encoding::IdPredicate;
use duet_data::Table;
use duet_query::PredOp;
use rand::rngs::SmallRng;
use rand::Rng;

/// One sampled virtual tuple: the per-column predicates (empty = wildcard) and
/// the anchor tuple's value ids, which serve as the training labels.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualTuple {
    /// Predicates per column (outer index = column); an empty vector means the
    /// column is unconstrained in this virtual tuple.
    pub predicates: Vec<Vec<IdPredicate>>,
    /// The anchor tuple's value ids (the cross-entropy labels).
    pub labels: Vec<usize>,
}

// A `&[VirtualTuple]` batch feeds the generic input-encoding and
// cross-entropy paths directly — no per-batch re-gathering of predicate rows
// or label vectors into parallel `Vec`s.
impl AsRef<[Vec<IdPredicate>]> for VirtualTuple {
    fn as_ref(&self) -> &[Vec<IdPredicate>] {
        &self.predicates
    }
}

impl AsRef<[usize]> for VirtualTuple {
    fn as_ref(&self) -> &[usize] {
        &self.labels
    }
}

/// Configuration of the sampler (a subset of [`crate::DuetConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Replication factor `µ`.
    pub expand_mu: usize,
    /// Probability of a wildcard per column.
    pub wildcard_prob: f64,
    /// Maximum predicates per column (more than 1 requires an MPSN).
    pub max_predicates_per_column: usize,
}

/// Sample the virtual tuples for a batch of anchor rows.
///
/// The returned vector has `rows.len() * expand_mu` entries: each anchor row
/// contributes `µ` independently sampled virtual tuples, which is how the
/// paper trains every tuple against several predicate combinations per step
/// without inflating the gradient batch.
pub fn sample_virtual_batch(
    table: &Table,
    rows: &[usize],
    config: &SamplerConfig,
    rng: &mut SmallRng,
) -> Vec<VirtualTuple> {
    let ncols = table.num_columns();
    let mut out = Vec::with_capacity(rows.len() * config.expand_mu.max(1));
    for &row in rows {
        for _ in 0..config.expand_mu.max(1) {
            let mut predicates = Vec::with_capacity(ncols);
            let mut labels = Vec::with_capacity(ncols);
            for col in 0..ncols {
                let anchor = table.column(col).id_at(row);
                labels.push(anchor as usize);
                if rng.gen::<f64>() < config.wildcard_prob {
                    predicates.push(Vec::new());
                    continue;
                }
                let ndv = table.column(col).ndv() as u32;
                let count = if config.max_predicates_per_column > 1 && ndv > 2 {
                    rng.gen_range(1..=config.max_predicates_per_column)
                } else {
                    1
                };
                let mut col_preds = Vec::with_capacity(count);
                for _ in 0..count {
                    col_preds.push(sample_predicate(anchor, ndv, rng));
                }
                predicates.push(col_preds);
            }
            out.push(VirtualTuple { predicates, labels });
        }
    }
    out
}

/// Sample one predicate `(op, v)` such that the anchor id satisfies it,
/// drawing `v` uniformly from the satisfying id range (paper Algorithm 1,
/// lines 12-17).
pub fn sample_predicate(anchor: u32, ndv: u32, rng: &mut SmallRng) -> IdPredicate {
    debug_assert!(anchor < ndv, "anchor id {anchor} outside domain of size {ndv}");
    // Operators are drawn uniformly; strict operators fall back to their
    // inclusive counterparts when the anchor sits at the edge of the domain
    // (there is no literal that would keep the predicate satisfiable).
    let op = PredOp::ALL[rng.gen_range(0..PredOp::ALL.len())];
    match op {
        PredOp::Eq => IdPredicate { op, value_id: anchor },
        PredOp::Ge => IdPredicate { op, value_id: rng.gen_range(0..=anchor) },
        PredOp::Le => IdPredicate { op, value_id: rng.gen_range(anchor..ndv) },
        PredOp::Gt => {
            if anchor == 0 {
                IdPredicate { op: PredOp::Ge, value_id: 0 }
            } else {
                IdPredicate { op, value_id: rng.gen_range(0..anchor) }
            }
        }
        PredOp::Lt => {
            if anchor + 1 >= ndv {
                IdPredicate { op: PredOp::Le, value_id: anchor }
            } else {
                IdPredicate { op, value_id: rng.gen_range(anchor + 1..ndv) }
            }
        }
    }
}

/// Check that an anchor id satisfies a predicate in id space (used by tests
/// and debug assertions).
pub fn satisfies(anchor: u32, pred: &IdPredicate) -> bool {
    match pred.op {
        PredOp::Eq => anchor == pred.value_id,
        PredOp::Gt => anchor > pred.value_id,
        PredOp::Lt => anchor < pred.value_id,
        PredOp::Ge => anchor >= pred.value_id,
        PredOp::Le => anchor <= pred.value_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_data::datasets::census_like;
    use rand::SeedableRng;

    fn sampler() -> SamplerConfig {
        SamplerConfig { expand_mu: 3, wildcard_prob: 0.25, max_predicates_per_column: 1 }
    }

    #[test]
    fn batch_size_is_rows_times_mu() {
        let t = census_like(500, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let batch = sample_virtual_batch(&t, &[0, 1, 2, 3], &sampler(), &mut rng);
        assert_eq!(batch.len(), 12);
        for vt in &batch {
            assert_eq!(vt.predicates.len(), t.num_columns());
            assert_eq!(vt.labels.len(), t.num_columns());
        }
    }

    #[test]
    fn anchor_always_satisfies_its_sampled_predicates() {
        let t = census_like(1_000, 2);
        let mut rng = SmallRng::seed_from_u64(2);
        let rows: Vec<usize> = (0..200).collect();
        let cfg = SamplerConfig { expand_mu: 2, wildcard_prob: 0.2, max_predicates_per_column: 3 };
        for vt in sample_virtual_batch(&t, &rows, &cfg, &mut rng) {
            for (col, preds) in vt.predicates.iter().enumerate() {
                for p in preds {
                    assert!(
                        satisfies(vt.labels[col] as u32, p),
                        "anchor {} does not satisfy {:?} on column {col}",
                        vt.labels[col],
                        p
                    );
                    assert!((p.value_id as usize) < t.column(col).ndv());
                }
            }
        }
    }

    #[test]
    fn wildcard_probability_roughly_respected() {
        let t = census_like(2_000, 3);
        let mut rng = SmallRng::seed_from_u64(3);
        let rows: Vec<usize> = (0..500).collect();
        let cfg = SamplerConfig { expand_mu: 1, wildcard_prob: 0.4, max_predicates_per_column: 1 };
        let batch = sample_virtual_batch(&t, &rows, &cfg, &mut rng);
        let total: usize = batch.iter().map(|vt| vt.predicates.len()).sum();
        let wildcards: usize =
            batch.iter().map(|vt| vt.predicates.iter().filter(|p| p.is_empty()).count()).sum();
        let frac = wildcards as f64 / total as f64;
        assert!((frac - 0.4).abs() < 0.05, "wildcard fraction {frac} far from 0.4");
    }

    #[test]
    fn strict_operators_fall_back_at_domain_edges() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..200 {
            // Anchor at the low edge of a 2-value domain: Gt must degrade to Ge.
            let p = sample_predicate(0, 2, &mut rng);
            assert!(satisfies(0, &p));
            // Anchor at the high edge: Lt must degrade to Le.
            let p = sample_predicate(1, 2, &mut rng);
            assert!(satisfies(1, &p));
        }
    }

    #[test]
    fn multi_predicate_sampling_emits_up_to_the_cap() {
        let t = census_like(500, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let cfg = SamplerConfig { expand_mu: 1, wildcard_prob: 0.0, max_predicates_per_column: 3 };
        let batch = sample_virtual_batch(&t, &(0..100).collect::<Vec<_>>(), &cfg, &mut rng);
        let max_seen =
            batch.iter().flat_map(|vt| vt.predicates.iter().map(|p| p.len())).max().unwrap();
        assert!(max_seen > 1 && max_seen <= 3);
    }
}
