//! The Duet network: predicate encoder + (optional) per-column MPSNs + a
//! masked autoregressive backbone, with the sampling-free estimation path of
//! the paper's Algorithm 3.

use crate::config::{DuetConfig, MpsnKind};
use crate::encoding::{Encoder, IdPredicate};
use crate::mpsn::{build_mpsns, ColumnMpsn, MergedMlpMpsn, MpsnScratch};
use duet_data::Table;
use duet_nn::{
    seeded_rng, softmax_restricted_mass, ForwardWorkspace, InferLayer, Layer, Made, MadeConfig,
    Matrix, Param, SoftmaxMode, SparseRows, WeightMode,
};
use duet_query::{PredOp, Query};

/// Every scratch buffer one estimation call chain needs, owned by the caller.
///
/// Ownership rules: a workspace belongs to whoever drives inference — a
/// serving worker thread, a bench loop, the trainer — never to the model, so
/// a shared (`Arc`) model can serve concurrent callers, each with their own
/// workspace. Buffers grow to the model's widest layer on first use and are
/// reused afterwards, making steady-state batched estimation **zero heap
/// allocation**. A workspace may be reused across models and batch sizes:
/// activation buffers are pure scratch, and the embedded
/// [`duet_nn::ForwardWorkspace`]'s masked-weight memos are validated per
/// layer by [`duet_nn::WeightKey`] — so reuse across models, optimizer
/// steps, or checkpoint hot-swaps can never serve stale weights.
#[derive(Debug, Clone, Default)]
pub struct DuetWorkspace {
    /// The `N x total_width` encoded input batch.
    pub(crate) input: Matrix,
    /// Ping-pong buffers for the autoregressive backbone's forward pass.
    pub(crate) nn: ForwardWorkspace,
    /// Per-column softmax staging for the probability masking step.
    pub(crate) probs: Vec<f32>,
    /// Stacked per-column predicate encodings feeding the MPSN.
    pub(crate) stacked: Matrix,
    /// MPSN embedding scratch.
    pub(crate) mpsn: MpsnScratch,
    /// Sparse row capture of `input` for the fused sparse first layer of the
    /// training path (the one-hot predicate encoding is mostly zeros).
    /// Filled by [`DuetModel::fill_input_with_sparse`]; the inference path
    /// never pays for the capture.
    pub(crate) sparse: SparseRows,
    /// Which exponential the probability-masking softmax uses for batches
    /// run through this workspace. Defaults to [`SoftmaxMode::Fast`] (the
    /// inference default, relative error ≤ 1e-6 — see `duet_nn::math`); set
    /// to [`SoftmaxMode::Exact`] to reproduce the libm softmax bit-for-bit.
    pub softmax_mode: SoftmaxMode,
    /// Which weight storage tier batched backbone passes read (see
    /// [`duet_nn::WeightMode`]). Defaults to [`WeightMode::Full`]
    /// (bit-exact); [`WeightMode::Half`] serves from the compressed f16
    /// warm tier — half the weight memory traffic, bounded per-weight
    /// rounding error. Per-workspace, so one shared model can serve both
    /// tiers concurrently.
    pub weight_mode: WeightMode,
}

impl DuetWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded input batch of the most recent
    /// [`DuetModel::fill_input`] call.
    pub fn input(&self) -> &Matrix {
        &self.input
    }
}

/// Per-table forward workspaces for a worker that serves a heterogeneous
/// set of models — e.g. a `duet-serve` shard worker whose queue multiplexes
/// requests for several registered tables.
///
/// Workspace `i` only ever sees table `i`'s shapes, so alternating between
/// differently-shaped models never thrashes buffer sizes: after one warm
/// batch per table the whole pool is allocation-free, exactly like a single
/// dedicated [`DuetWorkspace`]. The pool grows only when a table id first
/// appears (a registration-time event, never on the steady-state hot path).
#[derive(Debug, Clone, Default)]
pub struct WorkspacePool {
    slots: Vec<DuetWorkspace>,
}

impl WorkspacePool {
    /// An empty pool; per-table workspaces are created on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The workspace dedicated to `table_id`, created (empty) on first use.
    pub fn workspace(&mut self, table_id: usize) -> &mut DuetWorkspace {
        if table_id >= self.slots.len() {
            self.slots.resize_with(table_id + 1, DuetWorkspace::default);
        }
        &mut self.slots[table_id]
    }

    /// Number of per-table workspaces created so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no workspace has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// The trainable Duet model.
#[derive(Debug, Clone)]
pub struct DuetModel {
    config: DuetConfig,
    encoder: Encoder,
    made: Made,
    mpsns: Vec<ColumnMpsn>,
    /// Cached at construction so size queries need no mutable access; the
    /// architecture (and therefore the count) is fixed for a model's lifetime.
    num_params: usize,
}

impl DuetModel {
    /// Build a model for `table` with the given configuration.
    pub fn new(table: &Table, config: &DuetConfig, seed: u64) -> Self {
        config.validate().expect("invalid Duet configuration");
        let encoder = Encoder::new(table);
        let made_config = if config.residual {
            MadeConfig::res_made(
                encoder.block_widths(),
                encoder.output_sizes(),
                config.hidden_sizes[0],
                config.hidden_sizes.len(),
            )
        } else {
            MadeConfig::made(
                encoder.block_widths(),
                encoder.output_sizes(),
                config.hidden_sizes.clone(),
            )
        };
        let mut rng = seeded_rng(seed);
        let made = Made::new(made_config, &mut rng);
        let mpsns =
            build_mpsns(config.mpsn, &encoder.block_widths(), config.mpsn_hidden, seed ^ 0xa5a5);
        let mut model = Self { config: config.clone(), encoder, made, mpsns, num_params: 0 };
        let mut n = 0;
        model.visit_params(&mut |p| n += p.len());
        model.num_params = n;
        model
    }

    /// The model's configuration.
    pub fn config(&self) -> &DuetConfig {
        &self.config
    }

    /// The predicate encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The autoregressive backbone (mutable, for the trainer/optimizer).
    pub fn made_mut(&mut self) -> &mut Made {
        &mut self.made
    }

    /// The autoregressive backbone.
    pub fn made(&self) -> &Made {
        &self.made
    }

    /// The per-column MPSNs (empty when `MpsnKind::None`).
    pub fn mpsns(&self) -> &[ColumnMpsn] {
        &self.mpsns
    }

    /// Mutable access to the per-column MPSNs.
    pub fn mpsns_mut(&mut self) -> &mut [ColumnMpsn] {
        &mut self.mpsns
    }

    /// Build the merged block-diagonal MPSN for accelerated inference
    /// (only valid for the MLP variant).
    pub fn merged_mpsn(&self) -> Option<MergedMlpMpsn> {
        if self.config.mpsn == MpsnKind::Mlp && !self.mpsns.is_empty() {
            Some(MergedMlpMpsn::from_columns(&self.mpsns))
        } else {
            None
        }
    }

    /// Encode one virtual tuple / query row into the network's input vector.
    ///
    /// `preds[c]` is the list of predicates on column `c` (empty = wildcard).
    /// Without an MPSN only the first predicate of a column is encoded (the
    /// zero-out mask used at estimation time still honors all of them).
    pub fn row_input(&self, preds: &[Vec<IdPredicate>]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.encoder.total_width());
        for (col, col_preds) in preds.iter().enumerate() {
            if self.mpsns.is_empty() {
                match col_preds.first() {
                    Some(p) => out.extend(self.encoder.encode_predicate(col, p)),
                    None => out.extend(self.encoder.wildcard(col)),
                }
            } else {
                let encodings: Vec<Vec<f32>> =
                    col_preds.iter().map(|p| self.encoder.encode_predicate(col, p)).collect();
                out.extend(self.mpsns[col].embed(&encodings));
            }
        }
        out
    }

    /// Encode a batch of rows into an input matrix.
    ///
    /// Allocating convenience wrapper over [`DuetModel::fill_input`].
    pub fn input_matrix(&self, rows: &[Vec<Vec<IdPredicate>>]) -> Matrix {
        let mut ws = DuetWorkspace::new();
        self.fill_input(rows, &mut ws);
        ws.input
    }

    /// Encode a batch of rows directly into the workspace's input matrix,
    /// with no per-row or per-predicate intermediates: predicate encodings
    /// are written in place (non-MPSN path) or staged in the workspace's
    /// scratch buffers (MPSN path). Bit-identical to
    /// [`DuetModel::input_matrix`], allocation-free once the workspace is
    /// warm.
    ///
    /// `rows` may hold the per-column predicate lists by value or by
    /// reference (anything that derefs to `[Vec<IdPredicate>]`).
    pub fn fill_input<R: AsRef<[Vec<IdPredicate>]>>(&self, rows: &[R], ws: &mut DuetWorkspace) {
        let DuetWorkspace { input, stacked, mpsn, .. } = ws;
        input.reset(rows.len(), self.encoder.total_width());
        for (r, row) in rows.iter().enumerate() {
            let out_row = input.row_mut(r);
            let mut off = 0usize;
            for (col, col_preds) in row.as_ref().iter().enumerate() {
                let width = self.encoder.block_width(col);
                let slot = &mut out_row[off..off + width];
                if self.mpsns.is_empty() {
                    // First predicate only; wildcards stay all-zero (the
                    // encoder's wildcard encoding).
                    if let Some(p) = col_preds.first() {
                        self.encoder.encode_predicate_into(col, p, slot);
                    }
                } else if !col_preds.is_empty() {
                    stacked.reset(col_preds.len(), width);
                    for (k, p) in col_preds.iter().enumerate() {
                        self.encoder.encode_predicate_into(col, p, stacked.row_mut(k));
                    }
                    self.mpsns[col].embed_into(stacked, mpsn, slot);
                }
                off += width;
            }
        }
    }

    /// [`DuetModel::fill_input`] followed by a sparse row capture of the
    /// encoded batch into the workspace — the training path uses the capture
    /// to feed MADE's fused sparse first layer (forward **and** backward)
    /// without re-scanning the dense input. Allocation-free once warm (the
    /// capture reserves for the worst case up front).
    pub fn fill_input_with_sparse<R: AsRef<[Vec<IdPredicate>]>>(
        &self,
        rows: &[R],
        ws: &mut DuetWorkspace,
    ) {
        self.fill_input(rows, ws);
        ws.sparse.capture_from(&ws.input);
    }

    /// Inference-only forward pass through the backbone.
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        self.made.forward_inference(input)
    }

    /// The per-column output sizes (`d_i`).
    pub fn output_sizes(&self) -> Vec<usize> {
        self.encoder.output_sizes()
    }

    /// The per-column output sizes as a borrowed slice (no allocation).
    pub fn output_sizes_ref(&self) -> &[usize] {
        self.encoder.output_sizes_ref()
    }

    /// Algorithm 3, steps 3-4: given one row of logits and the per-column
    /// valid-id intervals, zero out the probabilities that violate the
    /// predicates and multiply the per-column sums into a selectivity.
    ///
    /// Unconstrained columns (full interval) contribute a factor of exactly 1,
    /// matching the paper's formulation where only constrained columns appear
    /// in the product.
    pub fn selectivity_from_logits(&self, logits_row: &[f32], intervals: &[(u32, u32)]) -> f64 {
        self.selectivity_from_logits_with(logits_row, intervals, &mut Vec::new())
    }

    /// [`DuetModel::selectivity_from_logits`] with a caller-provided softmax
    /// staging buffer (grows to the largest per-column domain, then is
    /// reused allocation-free). Uses the inference-default
    /// [`SoftmaxMode::Fast`].
    pub fn selectivity_from_logits_with(
        &self,
        logits_row: &[f32],
        intervals: &[(u32, u32)],
        probs: &mut Vec<f32>,
    ) -> f64 {
        self.selectivity_from_logits_mode(logits_row, intervals, probs, SoftmaxMode::Fast)
    }

    /// [`DuetModel::selectivity_from_logits_with`] with an explicit
    /// [`SoftmaxMode`].
    ///
    /// Per constrained column this computes the restricted probability mass
    /// through `duet_nn::softmax_restricted_mass` — the exponentials are
    /// staged unnormalized in `probs` and the mass is taken as an `f64`
    /// ratio, skipping the per-element normalization pass the old kernel
    /// paid. Estimates are identical across batch sizes and serving paths
    /// for a fixed mode, which is the bit-identity the serving layer relies
    /// on.
    pub fn selectivity_from_logits_mode(
        &self,
        logits_row: &[f32],
        intervals: &[(u32, u32)],
        probs: &mut Vec<f32>,
        mode: SoftmaxMode,
    ) -> f64 {
        let sizes = self.encoder.output_sizes_ref();
        debug_assert_eq!(intervals.len(), sizes.len());
        let mut selectivity = 1.0f64;
        let mut offset = 0usize;
        for (col, &size) in sizes.iter().enumerate() {
            let (lo, hi) = intervals[col];
            if lo == 0 && hi as usize == size {
                offset += size;
                continue; // unconstrained column
            }
            if lo >= hi {
                return 0.0; // contradictory predicates
            }
            let mass = softmax_restricted_mass(
                &logits_row[offset..offset + size],
                probs,
                lo as usize,
                hi as usize,
                mode,
            );
            selectivity *= mass;
            offset += size;
        }
        selectivity.clamp(0.0, 1.0)
    }

    /// Estimate the selectivity of one query row with a single forward pass
    /// (the paper's O(1) inference).
    pub fn estimate_selectivity(
        &self,
        preds: &[Vec<IdPredicate>],
        intervals: &[(u32, u32)],
    ) -> f64 {
        let input = Matrix::from_vec(1, self.encoder.total_width(), self.row_input(preds));
        let logits = self.forward_inference(&input);
        self.selectivity_from_logits(logits.row(0), intervals)
    }

    /// Estimate the selectivities of `N` query rows with **one** `N×W`
    /// forward pass through the backbone.
    ///
    /// The forward pass is row-independent (every matmul accumulates along
    /// the shared dimension in a fixed order, per output row), so each result
    /// is bit-identical to what [`DuetModel::estimate_selectivity`] returns
    /// for the same row — batching is purely a throughput optimization, which
    /// the serving layer (`duet-serve`) relies on for determinism.
    pub fn estimate_selectivity_batch(
        &self,
        rows: &[Vec<Vec<IdPredicate>>],
        intervals: &[Vec<(u32, u32)>],
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.estimate_selectivity_batch_with(rows, intervals, &mut DuetWorkspace::new(), &mut out);
        out
    }

    /// [`DuetModel::estimate_selectivity_batch`] staging every intermediate
    /// (encoded input, layer activations, per-column softmax) in a
    /// caller-provided workspace and writing the selectivities into `out`
    /// (cleared first). Zero heap allocation once the workspace and `out`
    /// have warmed up to the batch shape.
    ///
    /// `rows` and `intervals` are generic over anything that derefs to the
    /// per-row slices, so a serving queue can run its own request structs
    /// through the batch pass directly — no per-batch re-gathering of
    /// encodings into `Vec<Vec<...>>` containers.
    pub fn estimate_selectivity_batch_with<R, I>(
        &self,
        rows: &[R],
        intervals: &[I],
        ws: &mut DuetWorkspace,
        out: &mut Vec<f64>,
    ) where
        R: AsRef<[Vec<IdPredicate>]>,
        I: AsRef<[(u32, u32)]>,
    {
        assert_eq!(rows.len(), intervals.len(), "rows/intervals length mismatch");
        out.clear();
        if rows.is_empty() {
            return;
        }
        out.reserve(rows.len());
        self.fill_input(rows, ws);
        ws.nn.set_weight_mode(ws.weight_mode);
        let logits = self.made.infer_into(&ws.input, &mut ws.nn);
        for (r, row_intervals) in intervals.iter().enumerate() {
            out.push(self.selectivity_from_logits_mode(
                logits.row(r),
                row_intervals.as_ref(),
                &mut ws.probs,
                ws.softmax_mode,
            ));
        }
    }

    /// Visit every trainable parameter (backbone + MPSNs).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.made.visit_params(f);
        for m in &mut self.mpsns {
            m.visit_params(f);
        }
    }

    /// Zero every parameter gradient.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of trainable scalars (cached at construction).
    pub fn num_parameters(&self) -> usize {
        self.num_params
    }

    /// Model size in bytes (`f32` parameters), as reported in Table II.
    pub fn size_bytes(&self) -> usize {
        self.num_parameters() * std::mem::size_of::<f32>()
    }
}

/// Translate a [`Query`]'s predicates into per-column id-space predicates
/// using the (schema) table's dictionaries.
///
/// Literals that do not occur in a column's dictionary are mapped to the
/// nearest id (their lower bound); the interval mask — computed separately via
/// [`Query::column_intervals`] — remains exact, so this only affects the
/// conditioning signal, not which values are counted.
pub fn query_to_id_predicates(schema: &Table, query: &Query) -> Vec<Vec<IdPredicate>> {
    let mut per_col: Vec<Vec<IdPredicate>> = vec![Vec::new(); schema.num_columns()];
    for p in &query.predicates {
        let column = schema.column(p.column);
        let ndv = column.ndv() as u32;
        let value_id = column
            .id_of_value(&p.value)
            .unwrap_or_else(|| column.lower_bound(&p.value).min(ndv.saturating_sub(1)));
        per_col[p.column].push(IdPredicate { op: p.op, value_id });
    }
    per_col
}

/// Convenience: the number of columns a query constrains, in the encoding's
/// terms (used by the scalability experiment to bucket queries).
pub fn constrained_column_count(preds: &[Vec<IdPredicate>]) -> usize {
    preds.iter().filter(|p| !p.is_empty()).count()
}

/// Check whether an id-space predicate is satisfied by a value id (shared by
/// tests).
pub fn id_pred_matches(pred: &IdPredicate, id: u32) -> bool {
    match pred.op {
        PredOp::Eq => id == pred.value_id,
        PredOp::Gt => id > pred.value_id,
        PredOp::Lt => id < pred.value_id,
        PredOp::Ge => id >= pred.value_id,
        PredOp::Le => id <= pred.value_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_data::datasets::census_like;
    use duet_data::Value;
    use duet_query::{PredOp, Query};

    fn model(mpsn: MpsnKind) -> (Table, DuetModel) {
        let table = census_like(400, 3);
        let mut config = DuetConfig::small();
        config.mpsn = mpsn;
        if mpsn != MpsnKind::None {
            config.max_predicates_per_column = 2;
        }
        let model = DuetModel::new(&table, &config, 9);
        (table, model)
    }

    #[test]
    fn row_input_width_matches_encoder() {
        let (table, model) = model(MpsnKind::None);
        let q = Query::all().and(0, PredOp::Le, Value::Int(30));
        let preds = query_to_id_predicates(&table, &q);
        let input = model.row_input(&preds);
        assert_eq!(input.len(), model.encoder().total_width());
        assert_eq!(constrained_column_count(&preds), 1);
    }

    #[test]
    fn unconstrained_query_has_selectivity_one() {
        let (table, model) = model(MpsnKind::None);
        let q = Query::all();
        let preds = query_to_id_predicates(&table, &q);
        let intervals = q.column_intervals(&table);
        let sel = model.estimate_selectivity(&preds, &intervals);
        assert!((sel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn contradictory_query_has_zero_selectivity() {
        let (table, model) = model(MpsnKind::None);
        let q = Query::all().and(0, PredOp::Lt, Value::Int(1)).and(0, PredOp::Gt, Value::Int(50));
        let preds = query_to_id_predicates(&table, &q);
        let intervals = q.column_intervals(&table);
        assert_eq!(model.estimate_selectivity(&preds, &intervals), 0.0);
    }

    #[test]
    fn selectivity_is_a_probability_even_untrained() {
        for kind in [MpsnKind::None, MpsnKind::Mlp] {
            let (table, model) = model(kind);
            for seed in 0..5u64 {
                let q = Query::all()
                    .and((seed as usize) % 14, PredOp::Ge, Value::Int(seed as i64))
                    .and(((seed + 3) as usize) % 14, PredOp::Le, Value::Int(40));
                let preds = query_to_id_predicates(&table, &q);
                let intervals = q.column_intervals(&table);
                let sel = model.estimate_selectivity(&preds, &intervals);
                assert!((0.0..=1.0).contains(&sel), "sel {sel} out of range ({kind:?})");
            }
        }
    }

    #[test]
    fn estimation_is_deterministic() {
        let (table, model) = model(MpsnKind::None);
        let q = Query::all().and(2, PredOp::Le, Value::Int(60)).and(5, PredOp::Ge, Value::Int(2));
        let preds = query_to_id_predicates(&table, &q);
        let intervals = q.column_intervals(&table);
        let a = model.estimate_selectivity(&preds, &intervals);
        let b = model.estimate_selectivity(&preds, &intervals);
        assert_eq!(a, b, "Duet must be deterministic for a fixed query");
    }

    #[test]
    fn unknown_literals_are_mapped_to_nearest_id() {
        let (table, _) = model(MpsnKind::None);
        // Census-like dictionaries contain 0..ndv-1; Int(10_000) is absent.
        let q = Query::all().and(0, PredOp::Le, Value::Int(10_000));
        let preds = query_to_id_predicates(&table, &q);
        assert_eq!(preds[0].len(), 1);
        assert!((preds[0][0].value_id as usize) < table.column(0).ndv());
    }

    #[test]
    fn param_count_includes_mpsn() {
        let (_, without) = model(MpsnKind::None);
        let (_, with) = model(MpsnKind::Mlp);
        assert!(with.num_parameters() > without.num_parameters());
        assert_eq!(with.size_bytes(), with.num_parameters() * 4);
    }

    #[test]
    fn merged_mpsn_only_exists_for_mlp_kind() {
        let (_, m_none) = model(MpsnKind::None);
        assert!(m_none.merged_mpsn().is_none());
        let (_, m_mlp) = model(MpsnKind::Mlp);
        assert!(m_mlp.merged_mpsn().is_some());
    }

    #[test]
    fn id_pred_matches_covers_all_ops() {
        let p = |op| IdPredicate { op, value_id: 5 };
        assert!(id_pred_matches(&p(PredOp::Eq), 5));
        assert!(id_pred_matches(&p(PredOp::Ge), 5));
        assert!(id_pred_matches(&p(PredOp::Le), 5));
        assert!(id_pred_matches(&p(PredOp::Gt), 6));
        assert!(id_pred_matches(&p(PredOp::Lt), 4));
        assert!(!id_pred_matches(&p(PredOp::Gt), 5));
    }
}
