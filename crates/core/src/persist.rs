//! Checkpointing of trained Duet models.
//!
//! The weights are serialized with the workspace's binary checkpoint codec
//! ([`duet_nn::serialize`]); the architecture itself is rebuilt from the
//! estimator's configuration and table schema, so loading requires an
//! estimator constructed with the same configuration over the same table
//! (which is how a deployed estimator would be refreshed after fine-tuning).
//!
//! ## Integrity framing
//!
//! Every checkpoint produced by [`save_weights`] is sealed in an integrity
//! frame so that corruption is *detected*, never silently loaded as garbage
//! weights:
//!
//! ```text
//! "DUETCKF1"  (8 bytes)   frame magic
//! payload_len (u64 le)    exact length of the sealed codec payload
//! checksum    (u64 le)    FNV-1a 64 over the payload
//! payload     (...)       the `duet_nn::serialize` codec bytes
//! ```
//!
//! [`load_weights`] (and the cheaper [`verify_checkpoint`]) validate the
//! magic, the declared length against the bytes actually present, and the
//! checksum before a single weight is decoded. A truncated file, a torn
//! write, or a flipped bit yields a typed [`CheckpointError`] — callers like
//! the serving tier shed and retry instead of crashing or serving a
//! half-loaded model.

use crate::estimator::DuetEstimator;
use crate::trainer::ModelParams;
use bytes::Bytes;
use duet_nn::serialize::{load_params, save_params};

pub use duet_nn::serialize::CheckpointError;

/// Magic bytes identifying a sealed (checksummed) Duet checkpoint frame.
const FRAME_MAGIC: &[u8; 8] = b"DUETCKF1";

/// Frame header size: magic + payload length + checksum.
const FRAME_HEADER_LEN: usize = 8 + 8 + 8;

/// FNV-1a 64-bit over `bytes` — dependency-free, deterministic, and fast
/// enough for checkpoint-sized buffers (a few MB at eviction/reload time,
/// never on the per-request hot path).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Seal codec `payload` bytes in an integrity frame (see the module docs).
fn seal(payload: &[u8]) -> Bytes {
    let mut framed = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    framed.extend_from_slice(FRAME_MAGIC);
    framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    framed.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    Bytes::from(framed)
}

/// Validate a sealed checkpoint's frame — magic, declared length, checksum —
/// and return the inner codec payload without decoding any weights.
///
/// This is the cheap integrity gate used both by [`load_weights`] and by the
/// serving layer's checkpoint store (read-back verification after a spill,
/// validation before a reload attempt).
pub fn verify_checkpoint(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(CheckpointError::FrameCorrupt("shorter than the frame header"));
    }
    let (magic, rest) = bytes.split_at(8);
    if magic != FRAME_MAGIC {
        return Err(CheckpointError::FrameCorrupt("bad frame magic"));
    }
    let declared = u64::from_le_bytes(rest[..8].try_into().expect("8-byte slice"));
    let expected = u64::from_le_bytes(rest[8..16].try_into().expect("8-byte slice"));
    let payload = &rest[16..];
    if declared != payload.len() as u64 {
        return Err(CheckpointError::FrameCorrupt("declared length disagrees with the buffer"));
    }
    let found = fnv1a64(payload);
    if found != expected {
        return Err(CheckpointError::ChecksumMismatch { expected, found });
    }
    Ok(payload)
}

/// Serialize the estimator's weights (backbone + MPSNs) into a sealed,
/// checksummed checkpoint (see the module docs for the frame layout).
pub fn save_weights(estimator: &mut DuetEstimator) -> Bytes {
    seal(&save_params(&mut ModelParams(estimator.model_mut())))
}

/// Load a checkpoint produced by [`save_weights`] into an estimator with the
/// same architecture. The integrity frame is validated first; corrupt or
/// truncated bytes yield a typed error before any weight is touched.
pub fn load_weights(estimator: &mut DuetEstimator, bytes: &[u8]) -> Result<(), CheckpointError> {
    let payload = verify_checkpoint(bytes)?;
    load_params(&mut ModelParams(estimator.model_mut()), payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DuetConfig;
    use crate::model::DuetModel;
    use duet_data::datasets::census_like;
    use duet_query::{CardinalityEstimator, WorkloadSpec};

    #[test]
    fn weights_round_trip_preserves_estimates() {
        let table = census_like(400, 41);
        let cfg = DuetConfig::small().with_epochs(2);
        let mut trained = DuetEstimator::train_data_only(&table, &cfg, 3);
        let queries = WorkloadSpec::random(&table, 20, 9).generate(&table);
        let before: Vec<f64> = queries.iter().map(|q| trained.estimate(q)).collect();

        let checkpoint = save_weights(&mut trained);

        // A freshly initialized estimator with the same architecture.
        let fresh_model = DuetModel::new(&table, &cfg, 999);
        let mut fresh = DuetEstimator::from_model(fresh_model, &table, "restored");
        let after_init: Vec<f64> = queries.iter().map(|q| fresh.estimate(q)).collect();
        assert_ne!(before, after_init, "fresh weights should differ from trained ones");

        load_weights(&mut fresh, &checkpoint).expect("load should succeed");
        let after_load: Vec<f64> = queries.iter().map(|q| fresh.estimate(q)).collect();
        assert_eq!(before, after_load, "loading must restore the exact estimates");
    }

    #[test]
    fn loading_into_a_different_architecture_fails() {
        let table = census_like(300, 42);
        let mut small =
            DuetEstimator::train_data_only(&table, &DuetConfig::small().with_epochs(1), 1);
        let checkpoint = save_weights(&mut small);

        let mut other_cfg = DuetConfig::small();
        other_cfg.hidden_sizes = vec![16];
        let other_model = DuetModel::new(&table, &other_cfg, 2);
        let mut other = DuetEstimator::from_model(other_model, &table, "other");
        assert!(load_weights(&mut other, &checkpoint).is_err());
    }

    #[test]
    fn verify_accepts_pristine_frames() {
        let table = census_like(200, 43);
        let mut est =
            DuetEstimator::train_data_only(&table, &DuetConfig::small().with_epochs(1), 1);
        let checkpoint = save_weights(&mut est);
        let payload = verify_checkpoint(&checkpoint).expect("pristine frame verifies");
        assert_eq!(payload.len(), checkpoint.len() - super::FRAME_HEADER_LEN);
    }

    #[test]
    fn a_flipped_payload_bit_is_a_checksum_mismatch() {
        let table = census_like(200, 44);
        let mut est =
            DuetEstimator::train_data_only(&table, &DuetConfig::small().with_epochs(1), 1);
        let checkpoint = save_weights(&mut est);
        let mut bad = checkpoint.to_vec();
        let at = super::FRAME_HEADER_LEN + bad.len() / 2;
        bad[at] ^= 0x10;
        assert!(matches!(verify_checkpoint(&bad), Err(CheckpointError::ChecksumMismatch { .. })));
        // And loading takes the same gate: the model is never touched.
        let fresh_model = DuetModel::new(&table, &DuetConfig::small(), 7);
        let mut fresh = DuetEstimator::from_model(fresh_model, &table, "victim");
        assert!(load_weights(&mut fresh, &bad).is_err());
    }

    #[test]
    fn truncation_and_frame_damage_are_typed_errors() {
        let table = census_like(150, 45);
        let mut est =
            DuetEstimator::train_data_only(&table, &DuetConfig::small().with_epochs(1), 2);
        let checkpoint = save_weights(&mut est);

        // Truncated anywhere: header or payload.
        assert!(matches!(
            verify_checkpoint(&checkpoint[..super::FRAME_HEADER_LEN - 1]),
            Err(CheckpointError::FrameCorrupt(_))
        ));
        assert!(matches!(
            verify_checkpoint(&checkpoint[..checkpoint.len() - 3]),
            Err(CheckpointError::FrameCorrupt(_))
        ));
        // Wrong magic.
        let mut bad = checkpoint.to_vec();
        bad[0] = b'X';
        assert!(matches!(verify_checkpoint(&bad), Err(CheckpointError::FrameCorrupt(_))));
        // Trailing garbage disagrees with the declared length.
        let mut long = checkpoint.to_vec();
        long.push(0);
        assert!(matches!(verify_checkpoint(&long), Err(CheckpointError::FrameCorrupt(_))));
    }
}
