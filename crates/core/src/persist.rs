//! Checkpointing of trained Duet models.
//!
//! The weights are serialized with the workspace's binary checkpoint codec
//! ([`duet_nn::serialize`]); the architecture itself is rebuilt from the
//! estimator's configuration and table schema, so loading requires an
//! estimator constructed with the same configuration over the same table
//! (which is how a deployed estimator would be refreshed after fine-tuning).

use crate::estimator::DuetEstimator;
use crate::trainer::ModelParams;
use bytes::Bytes;
use duet_nn::serialize::{load_params, save_params};

pub use duet_nn::serialize::CheckpointError;

/// Serialize the estimator's weights (backbone + MPSNs) into a checkpoint.
pub fn save_weights(estimator: &mut DuetEstimator) -> Bytes {
    save_params(&mut ModelParams(estimator.model_mut()))
}

/// Load a checkpoint produced by [`save_weights`] into an estimator with the
/// same architecture.
pub fn load_weights(estimator: &mut DuetEstimator, bytes: &[u8]) -> Result<(), CheckpointError> {
    load_params(&mut ModelParams(estimator.model_mut()), bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DuetConfig;
    use crate::model::DuetModel;
    use duet_data::datasets::census_like;
    use duet_query::{CardinalityEstimator, WorkloadSpec};

    #[test]
    fn weights_round_trip_preserves_estimates() {
        let table = census_like(400, 41);
        let cfg = DuetConfig::small().with_epochs(2);
        let mut trained = DuetEstimator::train_data_only(&table, &cfg, 3);
        let queries = WorkloadSpec::random(&table, 20, 9).generate(&table);
        let before: Vec<f64> = queries.iter().map(|q| trained.estimate(q)).collect();

        let checkpoint = save_weights(&mut trained);

        // A freshly initialized estimator with the same architecture.
        let fresh_model = DuetModel::new(&table, &cfg, 999);
        let mut fresh = DuetEstimator::from_model(fresh_model, &table, "restored");
        let after_init: Vec<f64> = queries.iter().map(|q| fresh.estimate(q)).collect();
        assert_ne!(before, after_init, "fresh weights should differ from trained ones");

        load_weights(&mut fresh, &checkpoint).expect("load should succeed");
        let after_load: Vec<f64> = queries.iter().map(|q| fresh.estimate(q)).collect();
        assert_eq!(before, after_load, "loading must restore the exact estimates");
    }

    #[test]
    fn loading_into_a_different_architecture_fails() {
        let table = census_like(300, 42);
        let mut small =
            DuetEstimator::train_data_only(&table, &DuetConfig::small().with_epochs(1), 1);
        let checkpoint = save_weights(&mut small);

        let mut other_cfg = DuetConfig::small();
        other_cfg.hidden_sizes = vec![16];
        let other_model = DuetModel::new(&table, &other_cfg, 2);
        let mut other = DuetEstimator::from_model(other_model, &table, "other");
        assert!(load_weights(&mut other, &checkpoint).is_err());
    }
}
