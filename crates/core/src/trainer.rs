//! Training loops: data-driven training on the virtual table (Algorithm 1 +
//! cross-entropy) and hybrid training with the differentiable Q-Error loss
//! (Algorithm 2, `L = L_data + λ·log2(QError + 1)`).
//!
//! The whole step — input encoding, the backbone forward (with a fused
//! sparse first layer over the mostly-zero predicate encoding), the
//! per-column softmaxes, the gradient staging of both losses, the scratch
//! backward pass, and the Adam update — runs through a [`TrainStepScratch`],
//! so a steady-state [`train_step`] performs **zero heap allocation**
//! (asserted by the training phases of `tests/zero_alloc.rs`). The one
//! exception is MPSN back-propagation (absent in the default
//! configuration), which still heap-stages its per-predicate encodings.

use crate::config::DuetConfig;
use crate::encoding::IdPredicate;
use crate::model::{query_to_id_predicates, DuetModel, DuetWorkspace};
use crate::virtual_table::{sample_virtual_batch, SamplerConfig, VirtualTuple};
use duet_data::Table;
use duet_nn::{
    grouped_cross_entropy_with, seeded_rng, softmax_block_into, Adam, GradClip, Layer, Matrix,
    Param, SoftmaxMode, TrainWorkspace,
};
use duet_query::Query;
use rand::seq::SliceRandom;
use rand::Rng;
use std::borrow::Borrow;
use std::time::Instant;

/// Per-epoch training statistics, consumed by the convergence experiments
/// (Figures 3, 8 and 9).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean per-batch unsupervised loss `L_data` (summed cross-entropy over
    /// columns).
    pub data_loss: f64,
    /// Mean per-batch supervised loss `log2(QError + 1)` before scaling by λ
    /// (0 when training purely data-driven).
    pub query_loss: f64,
    /// Mean raw Q-Error over the query batches seen this epoch (1.0 when not
    /// hybrid).
    pub mean_train_q_error: f64,
    /// Wall-clock seconds spent in this epoch.
    pub seconds: f64,
    /// Number of (anchor) tuples processed this epoch.
    pub tuples_processed: usize,
}

/// A labelled training workload for hybrid training.
#[derive(Debug, Clone, Copy)]
pub struct TrainingWorkload<'a> {
    /// The training queries (e.g. historical workload).
    pub queries: &'a [Query],
    /// Their true cardinalities.
    pub cardinalities: &'a [u64],
}

/// Pre-processed query used by the supervised (Q-Error) loss: id-space
/// predicates, per-column valid-id intervals, the labelled cardinality, and
/// a loss weight (1 for offline workload queries; serving feedback can
/// up- or down-weight an observation).
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    pub(crate) preds: Vec<Vec<IdPredicate>>,
    pub(crate) intervals: Vec<(u32, u32)>,
    pub(crate) actual: f64,
    pub(crate) weight: f64,
}

impl PreparedQuery {
    /// Translate `query` against `schema` once, so every training step that
    /// revisits it pays no re-encoding.
    pub fn prepare(schema: &Table, query: &Query, cardinality: u64) -> Self {
        Self::from_parts(
            query_to_id_predicates(schema, query),
            query.column_intervals(schema),
            cardinality as f64,
        )
    }

    /// Build a prepared query from already-encoded id-space parts.
    ///
    /// This is the serving feedback path: the front door encodes every
    /// request into per-column [`IdPredicate`]s and valid-id intervals
    /// before routing it, so when a client later reports the query's true
    /// cardinality those encodings can feed the supervised loss directly —
    /// no query text, no re-encoding against the schema.
    pub fn from_parts(
        preds: Vec<Vec<IdPredicate>>,
        intervals: Vec<(u32, u32)>,
        actual: f64,
    ) -> Self {
        Self { preds, intervals, actual, weight: 1.0 }
    }

    /// Scale this query's contribution to the supervised loss (and its
    /// gradient) by `weight`. The per-batch loss is weight-normalized, so a
    /// weight of 2 counts exactly like two copies of the observation —
    /// how online feedback emphasizes freshly observed cardinalities over a
    /// stale offline workload.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "weight must be finite and non-negative");
        self.weight = weight;
        self
    }

    /// The labelled true cardinality.
    pub fn actual(&self) -> f64 {
        self.actual
    }

    /// The loss weight (1.0 unless set via [`PreparedQuery::with_weight`]).
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

// Prepared queries feed `DuetModel::fill_input` directly (by value or
// reference), so the training loop never re-gathers per-batch row vectors.
impl AsRef<[Vec<IdPredicate>]> for PreparedQuery {
    fn as_ref(&self) -> &[Vec<IdPredicate>] {
        &self.preds
    }
}

/// One constrained column staged by the query pass: its index, its logit
/// offset, where its probabilities start in the flat staging buffer, and its
/// restricted mass.
#[derive(Debug, Clone, Copy)]
struct ConstrainedCol {
    col: usize,
    offset: usize,
    start: usize,
    mass: f64,
}

/// Every reusable buffer one training step's forward work needs, owned by
/// the trainer (or a bench/test) across steps.
///
/// Layered on the inference workspaces: input encoding stages through an
/// embedded [`DuetWorkspace`], the backbone's training forward checkpoints
/// its activations into a [`duet_nn::TrainWorkspace`] (whose masked-weight
/// memo re-materializes in place after each optimizer step), and both losses
/// stage `dL/dlogits` in one reused gradient matrix. The query pass
/// additionally stages its per-column probabilities in a **flat buffer plus
/// an offset table** — replacing the per-row `Vec<(col, offset, Vec<f32>,
/// mass)>` the old implementation heap-built for every example.
#[derive(Debug, Clone, Default)]
pub struct TrainStepScratch {
    /// Input-encoding workspace (shared with the inference path's layout).
    ws: DuetWorkspace,
    /// Train-side activation checkpoints + masked-weight memo.
    nn: TrainWorkspace,
    /// `dL/dlogits` staging, shared by the data and query passes.
    grad_logits: Matrix,
    /// Flat per-column probability staging for the query pass.
    probs: Vec<f32>,
    /// Offset table over `probs`: one entry per constrained column.
    cols: Vec<ConstrainedCol>,
}

impl TrainStepScratch {
    /// An empty scratch; buffers grow over the first step and are reused
    /// allocation-free afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `dL/dlogits` staged by the most recent forward pass (what the
    /// backward pass consumes).
    pub fn grad_logits(&self) -> &Matrix {
        &self.grad_logits
    }

    /// The gradient w.r.t. the encoded input left by the most recent
    /// backward pass that was asked for it (the MPSN chain consumes this).
    pub fn input_grad(&self) -> &Matrix {
        self.nn.input_grad()
    }
}

/// Adapter exposing a [`DuetModel`]'s parameters to the optimizer and the
/// checkpoint codec through the [`Layer`] trait (its forward/backward are never
/// used). Public so external drivers — benches, the zero-allocation harness —
/// can run their own `adam.step(&mut ModelParams(&mut model))`.
pub struct ModelParams<'a>(pub &'a mut DuetModel);

impl Layer for ModelParams<'_> {
    fn forward(&mut self, _input: &Matrix) -> Matrix {
        unreachable!("ModelParams is only used for parameter visitation")
    }
    fn backward(&mut self, _grad_out: &Matrix) -> Matrix {
        unreachable!("ModelParams is only used for parameter visitation")
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.0.visit_params(f);
    }
}

/// Train a [`DuetModel`] on `table`, optionally with a labelled workload for
/// hybrid training, invoking `on_epoch` after every epoch.
pub fn train_model(
    table: &Table,
    config: &DuetConfig,
    workload: Option<TrainingWorkload<'_>>,
    seed: u64,
    mut on_epoch: impl FnMut(&EpochStats),
) -> DuetModel {
    train_model_with_eval(table, config, workload, seed, |stats, _| on_epoch(stats))
}

/// Like [`train_model`], but the per-epoch callback also receives the current
/// model so convergence experiments (Figures 8/9) can evaluate Q-Errors after
/// every epoch.
pub fn train_model_with_eval(
    table: &Table,
    config: &DuetConfig,
    workload: Option<TrainingWorkload<'_>>,
    seed: u64,
    mut on_epoch: impl FnMut(&EpochStats, &DuetModel),
) -> DuetModel {
    config.validate().expect("invalid Duet configuration");
    let mut model = DuetModel::new(table, config, seed);
    let mut rng = seeded_rng(seed ^ 0x517cc1b727220a95);
    let mut adam = Adam::new(config.learning_rate);
    if config.grad_clip > 0.0 {
        adam = adam.with_clip(GradClip::Value(config.grad_clip));
    }

    let sampler = SamplerConfig {
        expand_mu: config.expand_mu,
        wildcard_prob: config.wildcard_prob,
        max_predicates_per_column: config.max_predicates_per_column,
    };

    // Prepare the supervised workload once.
    let prepared: Vec<PreparedQuery> = match workload {
        Some(w) if config.lambda > 0.0 && config.query_batch_size > 0 => {
            assert_eq!(
                w.queries.len(),
                w.cardinalities.len(),
                "every training query needs a cardinality label"
            );
            w.queries
                .iter()
                .zip(w.cardinalities)
                .map(|(q, &card)| PreparedQuery::prepare(table, q, card))
                .collect()
        }
        _ => Vec::new(),
    };
    let hybrid = !prepared.is_empty();
    let num_rows_f = table.num_rows() as f64;

    let mut row_order: Vec<usize> = (0..table.num_rows()).collect();
    let mut query_cursor = 0usize;
    // One step scratch for the whole run: input encoding, the training
    // forward's activation checkpoints, and both losses' gradient staging
    // reuse these buffers across every batch of every epoch.
    let mut scratch = TrainStepScratch::new();
    // Reused query mini-batch container (borrows into `prepared`).
    let mut query_batch: Vec<&PreparedQuery> = Vec::new();

    for epoch in 0..config.epochs {
        let started = Instant::now();
        row_order.shuffle(&mut rng);
        let mut data_loss_sum = 0.0f64;
        let mut query_loss_sum = 0.0f64;
        let mut q_error_sum = 0.0f64;
        let mut batches = 0usize;
        let mut query_batches = 0usize;

        for chunk in row_order.chunks(config.batch_size) {
            let virtual_batch = sample_virtual_batch(table, chunk, &sampler, &mut rng);
            if hybrid {
                next_query_batch(
                    &prepared,
                    &mut query_cursor,
                    config.query_batch_size,
                    &mut query_batch,
                );
            }
            let (loss_data, loss_q, mean_q) = train_step(
                &mut model,
                &mut adam,
                &virtual_batch,
                &query_batch,
                num_rows_f,
                config.lambda,
                &mut scratch,
            );
            data_loss_sum += loss_data as f64;
            if hybrid {
                query_loss_sum += loss_q;
                q_error_sum += mean_q;
                query_batches += 1;
            }
            batches += 1;
        }

        let stats = EpochStats {
            epoch,
            data_loss: data_loss_sum / batches.max(1) as f64,
            query_loss: query_loss_sum / query_batches.max(1) as f64,
            mean_train_q_error: if query_batches > 0 {
                q_error_sum / query_batches as f64
            } else {
                1.0
            },
            seconds: started.elapsed().as_secs_f64(),
            tuples_processed: row_order.len(),
        };
        on_epoch(&stats, &model);
    }
    model
}

/// The data-driven training forward for one virtual-tuple batch: encode the
/// batch into the scratch input (capturing its sparse rows alongside — the
/// one-hot predicate encoding is mostly zeros, so the backbone's first layer
/// runs the fused sparse kernel), run the backbone's checkpointing forward,
/// and stage `dL/dlogits` of the grouped cross-entropy in the scratch.
///
/// Returns the batch loss; the caller continues with the scratch backward
/// (see [`train_step`]). Zero heap allocation once `scratch` is warm — this
/// is the path measured by the training phases of `tests/zero_alloc.rs`.
pub fn data_forward(
    model: &mut DuetModel,
    batch: &[VirtualTuple],
    scratch: &mut TrainStepScratch,
) -> f32 {
    let TrainStepScratch { ws, nn, grad_logits, .. } = scratch;
    model.fill_input_with_sparse(batch, ws);
    let logits = model.made_mut().forward_train_sparse(ws.input(), Some(&ws.sparse), nn);
    grouped_cross_entropy_with(logits, model.output_sizes_ref(), batch, grad_logits)
}

/// Forward/backward for one virtual-tuple batch, gradient-buffer backward
/// included. When an MPSN is present the gradient w.r.t. the network input
/// is additionally produced (readable via [`TrainStepScratch::input_grad`]).
fn data_pass(model: &mut DuetModel, batch: &[VirtualTuple], scratch: &mut TrainStepScratch) -> f32 {
    let loss = data_forward(model, batch, scratch);
    let need_input_grad = !model.mpsns().is_empty();
    let TrainStepScratch { ws, nn, grad_logits, .. } = scratch;
    model.made_mut().backward_scratch(grad_logits, Some(&ws.sparse), nn, need_input_grad);
    loss
}

/// Back-propagate input gradients into the per-column MPSNs for a batch of
/// predicate rows (virtual tuples or prepared queries).
fn backprop_mpsn<R: AsRef<[Vec<IdPredicate>]>>(
    model: &mut DuetModel,
    rows: &[R],
    grad_input: &Matrix,
) {
    if model.mpsns().is_empty() {
        return;
    }
    let encoder = model.encoder().clone();
    let ncols = encoder.num_columns();
    for col in 0..ncols {
        let offset = encoder.block_offset(col);
        let width = encoder.block_width(col);
        for (r, row_preds) in rows.iter().enumerate() {
            let preds = &row_preds.as_ref()[col];
            if preds.is_empty() {
                continue;
            }
            let encodings: Vec<Vec<f32>> =
                preds.iter().map(|p| encoder.encode_predicate(col, p)).collect();
            let grad_block = &grad_input.row(r)[offset..offset + width];
            model.mpsns_mut()[col].accumulate_grad(&encodings, grad_block);
        }
    }
}

/// Refill `out` with the next `size` prepared queries, wrapping around the
/// workload (the container is reused across steps).
fn next_query_batch<'a>(
    prepared: &'a [PreparedQuery],
    cursor: &mut usize,
    size: usize,
    out: &mut Vec<&'a PreparedQuery>,
) {
    out.clear();
    for _ in 0..size.min(prepared.len()) {
        out.push(&prepared[*cursor % prepared.len()]);
        *cursor += 1;
    }
}

/// The supervised training forward for a query mini-batch (Algorithm 2's
/// Q-Error loss): encode, forward, per-column **exact** softmax over each
/// constrained column, and stage the λ-scaled `dL/dlogits` in the scratch.
///
/// Probabilities are staged in the scratch's flat buffer + offset table —
/// no per-row heap containers — so the pass is allocation-free once warm.
/// Returns `(mean log2(QError + 1), mean QError)`; the caller continues with
/// the scratch backward (see [`train_step`]), whose gradients already
/// include the λ scaling.
pub fn query_forward<Q>(
    model: &mut DuetModel,
    batch: &[Q],
    num_rows: f64,
    lambda: f64,
    scratch: &mut TrainStepScratch,
) -> (f64, f64)
where
    Q: Borrow<PreparedQuery> + AsRef<[Vec<IdPredicate>]>,
{
    if batch.is_empty() {
        // Match the neutral element the hybrid loop folds with (loss 0,
        // q-error 1); the staged gradient is left untouched, so callers
        // must not run backward for an empty batch.
        return (0.0, 1.0);
    }
    let TrainStepScratch { ws, nn, grad_logits, probs, cols } = scratch;
    model.fill_input_with_sparse(batch, ws);
    let logits = model.made_mut().forward_train_sparse(ws.input(), Some(&ws.sparse), nn);
    let sizes = model.output_sizes_ref();

    grad_logits.reset(logits.rows(), logits.cols());
    let mut loss_sum = 0.0f64;
    let mut q_sum = 0.0f64;
    // Weight-normalized mean: with the default all-ones weights this is
    // exactly the old `1 / batch.len()` scaling (the sum of `len` ones is
    // the integer `len`, representable exactly), so unweighted training is
    // bit-identical to the pre-weighting implementation.
    let total_weight: f64 = batch.iter().map(|q| q.borrow().weight).sum();
    if total_weight <= 0.0 {
        return (0.0, 1.0);
    }
    let scale = lambda / total_weight;
    let ln2 = std::f64::consts::LN_2;

    for (r, q) in batch.iter().enumerate() {
        let pq = q.borrow();
        let weight = pq.weight;
        let row = logits.row(r);
        // Per-column softmax, restricted mass and the product selectivity.
        // Only constrained columns are staged (flat probs + offset table).
        probs.clear();
        cols.clear();
        let mut offset = 0usize;
        let mut selectivity = 1.0f64;
        let mut contradiction = false;
        for (col, &size) in sizes.iter().enumerate() {
            let (lo, hi) = pq.intervals[col];
            if lo >= hi {
                contradiction = true;
            } else if !(lo == 0 && hi as usize == size) {
                let start = probs.len();
                probs.resize(start + size, 0.0);
                // Exact softmax: the gradient below assumes the same exp
                // the forward used.
                softmax_block_into(
                    &row[offset..offset + size],
                    &mut probs[start..start + size],
                    SoftmaxMode::Exact,
                );
                let mass: f64 =
                    probs[start + lo as usize..start + hi as usize].iter().map(|&p| p as f64).sum();
                let mass = mass.max(1e-9);
                selectivity *= mass;
                cols.push(ConstrainedCol { col, offset, start, mass });
            }
            offset += size;
        }
        if contradiction {
            // The estimate is exactly zero and carries no useful gradient.
            let actual = pq.actual.max(1.0);
            let q = actual; // est clamps to 1
            loss_sum += weight * (q + 1.0).log2();
            q_sum += weight * q;
            continue;
        }

        let est_raw = selectivity * num_rows;
        let est = est_raw.max(1.0);
        let actual = pq.actual.max(1.0);
        let q = if est >= actual { est / actual } else { actual / est };
        loss_sum += weight * (q + 1.0).log2();
        q_sum += weight * q;

        // dL/dq, dq/d est, d est/d sel. When the estimate sits below the
        // 1-row clamp we still propagate the unclamped subgradient so badly
        // underestimating queries keep producing a learning signal. The
        // query's feedback weight scales the whole chain.
        let dl_dq = weight / ((q + 1.0) * ln2);
        let dq_dest = if est >= actual { 1.0 / actual } else { -actual / (est * est) };
        let dest_dsel = num_rows;
        let dl_dsel = dl_dq * dq_dest * dest_dsel * scale;

        for cc in cols.iter() {
            let dl_dmass = dl_dsel * (selectivity / cc.mass);
            // Softmax backward: dL/dlogit_k = p_k * (in_range_k - mass) * dl_dmass
            let (lo, hi) = pq.intervals[cc.col];
            let size = sizes[cc.col];
            let grow = grad_logits.row_mut(r);
            for (k, &p) in probs[cc.start..cc.start + size].iter().enumerate() {
                let in_range = if (k as u32) >= lo && (k as u32) < hi { 1.0 } else { 0.0 };
                grow[cc.offset + k] += (p as f64 * (in_range - cc.mass) * dl_dmass) as f32;
            }
        }
    }

    (loss_sum / total_weight, q_sum / total_weight)
}

/// Forward/backward for a supervised query batch, gradient-buffer backward
/// included. Returns `(mean log2(QError+1), mean QError)`; the gradients
/// already include the λ scaling. When an MPSN is present the input
/// gradient is additionally produced (readable via
/// [`TrainStepScratch::input_grad`]).
fn query_pass<Q>(
    model: &mut DuetModel,
    batch: &[Q],
    num_rows: f64,
    lambda: f64,
    scratch: &mut TrainStepScratch,
) -> (f64, f64)
where
    Q: Borrow<PreparedQuery> + AsRef<[Vec<IdPredicate>]>,
{
    if batch.is_empty() {
        return (0.0, 1.0);
    }
    let (mean_loss, mean_q) = query_forward(model, batch, num_rows, lambda, scratch);
    let need_input_grad = !model.mpsns().is_empty();
    let TrainStepScratch { ws, nn, grad_logits, .. } = scratch;
    model.made_mut().backward_scratch(grad_logits, Some(&ws.sparse), nn, need_input_grad);
    (mean_loss, mean_q)
}

/// One complete optimizer step — the paper's hybrid update (Algorithm 2):
/// zero the gradients, run the data-driven pass (forward + scratch
/// backward), the supervised query pass when `query_batch` is non-empty,
/// MPSN back-propagation when the model has MPSNs, then one Adam step.
///
/// Gradients ping-pong through `scratch`'s reusable buffers and the
/// backbone's first layer consumes the sparse capture of the encoded input,
/// so the steady-state step performs **zero heap allocation** (asserted by
/// phase 7 of `tests/zero_alloc.rs`); MPSN back-propagation — absent in the
/// default configuration — is the one remaining allocating stage.
///
/// Returns `(data_loss, query_loss, mean_q_error)`, the query terms being
/// the fold-neutral `(0.0, 1.0)` for an empty query batch.
pub fn train_step<Q>(
    model: &mut DuetModel,
    adam: &mut Adam,
    batch: &[VirtualTuple],
    query_batch: &[Q],
    num_rows: f64,
    lambda: f64,
    scratch: &mut TrainStepScratch,
) -> (f32, f64, f64)
where
    Q: Borrow<PreparedQuery> + AsRef<[Vec<IdPredicate>]>,
{
    model.zero_grad();
    let data_loss = data_pass(model, batch, scratch);
    if !model.mpsns().is_empty() {
        backprop_mpsn(model, batch, scratch.input_grad());
    }
    let (query_loss, mean_q) = if query_batch.is_empty() {
        (0.0, 1.0)
    } else {
        let (loss_q, mean_q) = query_pass(model, query_batch, num_rows, lambda, scratch);
        if !model.mpsns().is_empty() {
            backprop_mpsn(model, query_batch, scratch.input_grad());
        }
        (loss_q, mean_q)
    };
    adam.step(&mut ModelParams(model));
    (data_loss, query_loss, mean_q)
}

/// Convenience wrapper: shuffle-free deterministic selection of training rows
/// for throughput measurements (Table III): runs exactly `steps` optimizer
/// steps and reports tuples/second.
pub fn measure_training_throughput(
    table: &Table,
    config: &DuetConfig,
    workload: Option<TrainingWorkload<'_>>,
    steps: usize,
    seed: u64,
) -> f64 {
    let mut cfg = config.clone();
    // One epoch over a prefix that covers exactly `steps` batches.
    let rows_needed = (steps * cfg.batch_size).min(table.num_rows()).max(cfg.batch_size);
    cfg.epochs = 1;
    let sub = table.sample_prefix(rows_needed);
    let started = Instant::now();
    let mut processed = 0usize;
    let _ = train_model(&sub, &cfg, workload, seed, |stats| {
        processed += stats.tuples_processed;
    });
    let secs = started.elapsed().as_secs_f64();
    processed as f64 / secs.max(1e-9)
}

/// Deterministically pick `n` row indices (used by tests).
pub fn pick_rows(table: &Table, n: usize, seed: u64) -> Vec<usize> {
    let mut rng = seeded_rng(seed);
    (0..n.min(table.num_rows())).map(|_| rng.gen_range(0..table.num_rows())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpsnKind;
    use duet_data::datasets::census_like;
    use duet_query::{exact_cardinality, WorkloadSpec};

    #[test]
    fn data_training_reduces_loss() {
        let table = census_like(1_000, 21);
        let mut cfg = DuetConfig::small();
        cfg.epochs = 4;
        let mut losses = Vec::new();
        let _ = train_model(&table, &cfg, None, 7, |s| losses.push(s.data_loss));
        assert_eq!(losses.len(), 4);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "data loss should decrease: {losses:?}"
        );
    }

    #[test]
    fn hybrid_training_reports_query_loss() {
        let table = census_like(800, 22);
        let spec = WorkloadSpec::in_workload(&table, 64, 42);
        let queries = spec.generate(&table);
        let cards: Vec<u64> = queries.iter().map(|q| exact_cardinality(&table, q)).collect();
        let mut cfg = DuetConfig::small();
        cfg.epochs = 2;
        let workload = TrainingWorkload { queries: &queries, cardinalities: &cards };
        let mut saw_query_loss = false;
        let _ = train_model(&table, &cfg, Some(workload), 8, |s| {
            if s.query_loss > 0.0 {
                saw_query_loss = true;
            }
            assert!(s.mean_train_q_error >= 1.0);
        });
        assert!(saw_query_loss, "hybrid training should produce a supervised loss");
    }

    #[test]
    fn training_with_mpsn_updates_mpsn_parameters() {
        let table = census_like(400, 23);
        let mut cfg = DuetConfig::small().with_mpsn(MpsnKind::Mlp, 2);
        cfg.epochs = 1;
        cfg.batch_size = 64;
        let mut model_before = DuetModel::new(&table, &cfg, 5);
        let before: Vec<f32> = {
            let mut v = Vec::new();
            model_before.visit_params(&mut |p| v.push(p.data.mean()));
            v
        };
        let mut model_after = train_model(&table, &cfg, None, 5, |_| {});
        let after: Vec<f32> = {
            let mut v = Vec::new();
            model_after.visit_params(&mut |p| v.push(p.data.mean()));
            v
        };
        assert_eq!(before.len(), after.len());
        let changed =
            before.iter().zip(after.iter()).filter(|(a, b)| (*a - *b).abs() > 1e-9).count();
        assert!(
            changed > before.len() / 2,
            "most parameters (including MPSN) should move during training"
        );
    }

    #[test]
    fn throughput_measurement_is_positive() {
        let table = census_like(600, 24);
        let cfg = DuetConfig::small().with_epochs(1);
        let tput = measure_training_throughput(&table, &cfg, None, 2, 3);
        assert!(tput > 0.0);
    }

    #[test]
    fn scratch_forward_matches_layer_forward() {
        // The checkpointing training forward must produce the same loss and
        // logits gradient as the plain `Layer::forward` + allocating
        // grouped cross-entropy it replaced.
        let table = census_like(300, 25);
        let cfg = DuetConfig::small();
        let mut model = DuetModel::new(&table, &cfg, 17);
        let mut rng = seeded_rng(99);
        let sampler =
            SamplerConfig { expand_mu: 2, wildcard_prob: 0.3, max_predicates_per_column: 1 };
        let rows: Vec<usize> = (0..24).collect();
        let batch = sample_virtual_batch(&table, &rows, &sampler, &mut rng);

        // Reference: the old-style allocating path.
        let mut ws = DuetWorkspace::new();
        let reference_rows: Vec<&Vec<Vec<IdPredicate>>> =
            batch.iter().map(|vt| &vt.predicates).collect();
        model.fill_input(&reference_rows, &mut ws);
        let labels: Vec<Vec<usize>> = batch.iter().map(|vt| vt.labels.clone()).collect();
        let blocks = model.output_sizes();
        let logits = model.made_mut().forward(ws.input());
        let (want_loss, want_grad) = duet_nn::grouped_cross_entropy(&logits, &blocks, &labels);

        let mut scratch = TrainStepScratch::new();
        for round in 0..2 {
            let loss = data_forward(&mut model, &batch, &mut scratch);
            assert_eq!(loss, want_loss, "round {round}");
            assert_eq!(scratch.grad_logits(), &want_grad, "round {round}");
        }
    }

    #[test]
    fn query_forward_is_stable_across_scratch_reuse() {
        let table = census_like(400, 26);
        let cfg = DuetConfig::small();
        let mut model = DuetModel::new(&table, &cfg, 3);
        let queries = WorkloadSpec::in_workload(&table, 16, 7).generate(&table);
        let prepared: Vec<PreparedQuery> = queries
            .iter()
            .map(|q| PreparedQuery::prepare(&table, q, exact_cardinality(&table, q)))
            .collect();
        let mut scratch = TrainStepScratch::new();
        let first =
            query_forward(&mut model, &prepared, table.num_rows() as f64, 0.1, &mut scratch);
        let first_grad = scratch.grad_logits().clone();
        let second =
            query_forward(&mut model, &prepared, table.num_rows() as f64, 0.1, &mut scratch);
        assert_eq!(first, second);
        assert_eq!(&first_grad, scratch.grad_logits());
        assert!(first.0.is_finite() && first.1 >= 1.0);

        // An empty batch is the fold-neutral element, never NaN.
        let empty: Vec<PreparedQuery> = Vec::new();
        let neutral = query_forward(&mut model, &empty, table.num_rows() as f64, 0.1, &mut scratch);
        assert_eq!(neutral, (0.0, 1.0));
    }

    #[test]
    fn from_parts_matches_prepare() {
        let table = census_like(300, 27);
        let query = WorkloadSpec::random(&table, 1, 9).generate(&table).remove(0);
        let card = exact_cardinality(&table, &query);
        let via_query = PreparedQuery::prepare(&table, &query, card);
        let via_parts = PreparedQuery::from_parts(
            query_to_id_predicates(&table, &query),
            query.column_intervals(&table),
            card as f64,
        );
        assert_eq!(via_query.preds, via_parts.preds);
        assert_eq!(via_query.intervals, via_parts.intervals);
        assert_eq!(via_query.actual, via_parts.actual);
        assert_eq!(via_query.weight(), 1.0);
        assert_eq!(via_parts.with_weight(3.0).weight(), 3.0);
    }

    #[test]
    fn feedback_weight_counts_like_duplication() {
        // A query with weight 2 must contribute to the weighted-mean loss and
        // the staged gradient exactly like two unit-weight copies of itself.
        let table = census_like(400, 28);
        let cfg = DuetConfig::small();
        let mut model = DuetModel::new(&table, &cfg, 6);
        let queries = WorkloadSpec::in_workload(&table, 4, 17).generate(&table);
        let prepared: Vec<PreparedQuery> = queries
            .iter()
            .map(|q| PreparedQuery::prepare(&table, q, exact_cardinality(&table, q)))
            .collect();
        let num_rows = table.num_rows() as f64;

        // Weighted: [q0(w=2), q1, q2, q3].
        let mut weighted = prepared.clone();
        weighted[0] = weighted[0].clone().with_weight(2.0);
        let mut scratch = TrainStepScratch::new();
        let got = query_forward(&mut model, &weighted, num_rows, 0.1, &mut scratch);

        // Duplicated: [q0, q0, q1, q2, q3].
        let mut duplicated = vec![prepared[0].clone()];
        duplicated.extend(prepared.iter().cloned());
        let mut scratch_dup = TrainStepScratch::new();
        let want = query_forward(&mut model, &duplicated, num_rows, 0.1, &mut scratch_dup);

        assert!((got.0 - want.0).abs() < 1e-12, "loss {} vs {}", got.0, want.0);
        assert!((got.1 - want.1).abs() < 1e-12, "q-error {} vs {}", got.1, want.1);
        // The duplicated batch stages the copy's gradient on two rows; the
        // weighted batch folds it into one. Summing per-logit over rows of
        // the same query must agree.
        let gw = scratch.grad_logits();
        let gd = scratch_dup.grad_logits();
        for c in 0..gw.cols() {
            let w0 = gw.row(0)[c] as f64;
            let d0 = gd.row(0)[c] as f64 + gd.row(1)[c] as f64;
            assert!((w0 - d0).abs() < 1e-6, "gradient mismatch at col {c}: {w0} vs {d0}");
        }

        // Zero total weight degrades to the fold-neutral element.
        let zeroed: Vec<PreparedQuery> =
            prepared.iter().map(|q| q.clone().with_weight(0.0)).collect();
        assert_eq!(query_forward(&mut model, &zeroed, num_rows, 0.1, &mut scratch), (0.0, 1.0));
    }
}
