//! Training loops: data-driven training on the virtual table (Algorithm 1 +
//! cross-entropy) and hybrid training with the differentiable Q-Error loss
//! (Algorithm 2, `L = L_data + λ·log2(QError + 1)`).

use crate::config::DuetConfig;
use crate::encoding::IdPredicate;
use crate::model::{query_to_id_predicates, DuetModel, DuetWorkspace};
use crate::virtual_table::{sample_virtual_batch, SamplerConfig, VirtualTuple};
use duet_data::Table;
use duet_nn::{grouped_cross_entropy, seeded_rng, softmax, Adam, GradClip, Layer, Matrix, Param};
use duet_query::Query;
use rand::seq::SliceRandom;
use rand::Rng;
use std::time::Instant;

/// Per-epoch training statistics, consumed by the convergence experiments
/// (Figures 3, 8 and 9).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean per-batch unsupervised loss `L_data` (summed cross-entropy over
    /// columns).
    pub data_loss: f64,
    /// Mean per-batch supervised loss `log2(QError + 1)` before scaling by λ
    /// (0 when training purely data-driven).
    pub query_loss: f64,
    /// Mean raw Q-Error over the query batches seen this epoch (1.0 when not
    /// hybrid).
    pub mean_train_q_error: f64,
    /// Wall-clock seconds spent in this epoch.
    pub seconds: f64,
    /// Number of (anchor) tuples processed this epoch.
    pub tuples_processed: usize,
}

/// A labelled training workload for hybrid training.
#[derive(Debug, Clone, Copy)]
pub struct TrainingWorkload<'a> {
    /// The training queries (e.g. historical workload).
    pub queries: &'a [Query],
    /// Their true cardinalities.
    pub cardinalities: &'a [u64],
}

/// Pre-processed query used by the supervised loss.
struct PreparedQuery {
    preds: Vec<Vec<IdPredicate>>,
    intervals: Vec<(u32, u32)>,
    actual: f64,
}

/// Adapter exposing a [`DuetModel`]'s parameters to the optimizer and the
/// checkpoint codec through the [`Layer`] trait (its forward/backward are never
/// used).
pub(crate) struct ModelParams<'a>(pub &'a mut DuetModel);

impl Layer for ModelParams<'_> {
    fn forward(&mut self, _input: &Matrix) -> Matrix {
        unreachable!("ModelParams is only used for parameter visitation")
    }
    fn backward(&mut self, _grad_out: &Matrix) -> Matrix {
        unreachable!("ModelParams is only used for parameter visitation")
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.0.visit_params(f);
    }
}

/// Train a [`DuetModel`] on `table`, optionally with a labelled workload for
/// hybrid training, invoking `on_epoch` after every epoch.
pub fn train_model(
    table: &Table,
    config: &DuetConfig,
    workload: Option<TrainingWorkload<'_>>,
    seed: u64,
    mut on_epoch: impl FnMut(&EpochStats),
) -> DuetModel {
    train_model_with_eval(table, config, workload, seed, |stats, _| on_epoch(stats))
}

/// Like [`train_model`], but the per-epoch callback also receives the current
/// model so convergence experiments (Figures 8/9) can evaluate Q-Errors after
/// every epoch.
pub fn train_model_with_eval(
    table: &Table,
    config: &DuetConfig,
    workload: Option<TrainingWorkload<'_>>,
    seed: u64,
    mut on_epoch: impl FnMut(&EpochStats, &DuetModel),
) -> DuetModel {
    config.validate().expect("invalid Duet configuration");
    let mut model = DuetModel::new(table, config, seed);
    let mut rng = seeded_rng(seed ^ 0x517cc1b727220a95);
    let mut adam = Adam::new(config.learning_rate);
    if config.grad_clip > 0.0 {
        adam = adam.with_clip(GradClip::Value(config.grad_clip));
    }

    let sampler = SamplerConfig {
        expand_mu: config.expand_mu,
        wildcard_prob: config.wildcard_prob,
        max_predicates_per_column: config.max_predicates_per_column,
    };

    // Prepare the supervised workload once.
    let prepared: Vec<PreparedQuery> = match workload {
        Some(w) if config.lambda > 0.0 && config.query_batch_size > 0 => {
            assert_eq!(
                w.queries.len(),
                w.cardinalities.len(),
                "every training query needs a cardinality label"
            );
            w.queries
                .iter()
                .zip(w.cardinalities)
                .map(|(q, &card)| PreparedQuery {
                    preds: query_to_id_predicates(table, q),
                    intervals: q.column_intervals(table),
                    actual: card as f64,
                })
                .collect()
        }
        _ => Vec::new(),
    };
    let hybrid = !prepared.is_empty();
    let num_rows_f = table.num_rows() as f64;

    let mut row_order: Vec<usize> = (0..table.num_rows()).collect();
    let mut query_cursor = 0usize;
    // One encoding workspace for the whole run: the trainer stays on the
    // caching `Layer::forward` path (backward needs the cached activations),
    // but input encoding reuses these buffers across every batch.
    let mut ws = DuetWorkspace::new();

    for epoch in 0..config.epochs {
        let started = Instant::now();
        row_order.shuffle(&mut rng);
        let mut data_loss_sum = 0.0f64;
        let mut query_loss_sum = 0.0f64;
        let mut q_error_sum = 0.0f64;
        let mut batches = 0usize;
        let mut query_batches = 0usize;

        for chunk in row_order.chunks(config.batch_size) {
            model.zero_grad();

            // --- Unsupervised pass over sampled virtual tuples ------------
            let virtual_batch = sample_virtual_batch(table, chunk, &sampler, &mut rng);
            let (loss_data, grad_input) = data_pass(&mut model, &virtual_batch, &mut ws);
            data_loss_sum += loss_data as f64;
            if let Some(grad_input) = grad_input {
                backprop_mpsn(&mut model, &virtual_batch, &grad_input);
            }

            // --- Supervised pass over a query mini-batch ------------------
            if hybrid {
                let batch = next_query_batch(&prepared, &mut query_cursor, config.query_batch_size);
                let (loss_q, mean_q, grad_input_q) =
                    query_pass(&mut model, &batch, num_rows_f, config.lambda, &mut ws);
                query_loss_sum += loss_q;
                q_error_sum += mean_q;
                query_batches += 1;
                if let Some(grad_input_q) = grad_input_q {
                    let rows: Vec<&Vec<Vec<IdPredicate>>> =
                        batch.iter().map(|p| &p.preds).collect();
                    backprop_mpsn_impl(&mut model, &rows, &grad_input_q);
                }
            }

            adam.step(&mut ModelParams(&mut model));
            batches += 1;
        }

        let stats = EpochStats {
            epoch,
            data_loss: data_loss_sum / batches.max(1) as f64,
            query_loss: query_loss_sum / query_batches.max(1) as f64,
            mean_train_q_error: if query_batches > 0 {
                q_error_sum / query_batches as f64
            } else {
                1.0
            },
            seconds: started.elapsed().as_secs_f64(),
            tuples_processed: row_order.len(),
        };
        on_epoch(&stats, &model);
    }
    model
}

/// Forward/backward for one virtual-tuple batch. Returns the loss and, when an
/// MPSN is present, the gradient w.r.t. the network input (needed to continue
/// back-propagation into the per-column MPSNs).
fn data_pass(
    model: &mut DuetModel,
    batch: &[VirtualTuple],
    ws: &mut DuetWorkspace,
) -> (f32, Option<Matrix>) {
    let rows: Vec<&Vec<Vec<IdPredicate>>> = batch.iter().map(|vt| &vt.predicates).collect();
    model.fill_input(&rows, ws);
    let labels: Vec<Vec<usize>> = batch.iter().map(|vt| vt.labels.clone()).collect();
    let blocks = model.output_sizes();
    let logits = model.made_mut().forward(ws.input());
    let (loss, grad_logits) = grouped_cross_entropy(&logits, &blocks, &labels);
    let grad_input = model.made_mut().backward(&grad_logits);
    if model.mpsns().is_empty() {
        (loss, None)
    } else {
        (loss, Some(grad_input))
    }
}

/// Back-propagate input gradients into the per-column MPSNs for a virtual
/// batch.
fn backprop_mpsn(model: &mut DuetModel, batch: &[VirtualTuple], grad_input: &Matrix) {
    let rows: Vec<&Vec<Vec<IdPredicate>>> = batch.iter().map(|vt| &vt.predicates).collect();
    backprop_mpsn_impl(model, &rows, grad_input);
}

fn backprop_mpsn_impl(model: &mut DuetModel, rows: &[&Vec<Vec<IdPredicate>>], grad_input: &Matrix) {
    if model.mpsns().is_empty() {
        return;
    }
    let encoder = model.encoder().clone();
    let ncols = encoder.num_columns();
    for col in 0..ncols {
        let offset = encoder.block_offset(col);
        let width = encoder.block_width(col);
        for (r, row_preds) in rows.iter().enumerate() {
            let preds = &row_preds[col];
            if preds.is_empty() {
                continue;
            }
            let encodings: Vec<Vec<f32>> =
                preds.iter().map(|p| encoder.encode_predicate(col, p)).collect();
            let grad_block = &grad_input.row(r)[offset..offset + width];
            model.mpsns_mut()[col].accumulate_grad(&encodings, grad_block);
        }
    }
}

/// Pull the next `size` prepared queries, wrapping around the workload.
fn next_query_batch<'a>(
    prepared: &'a [PreparedQuery],
    cursor: &mut usize,
    size: usize,
) -> Vec<&'a PreparedQuery> {
    let mut out = Vec::with_capacity(size);
    for _ in 0..size.min(prepared.len()) {
        out.push(&prepared[*cursor % prepared.len()]);
        *cursor += 1;
    }
    out
}

/// Forward/backward for a supervised query batch.
///
/// Returns `(mean log2(QError+1), mean QError, grad wrt input)` where the
/// gradient already includes the λ scaling so it can simply be accumulated
/// on top of the data-pass gradients (the caller continues it into the
/// MPSNs using the same prepared batch).
type QueryPassOutput = (f64, f64, Option<Matrix>);

fn query_pass(
    model: &mut DuetModel,
    batch: &[&PreparedQuery],
    num_rows: f64,
    lambda: f64,
    ws: &mut DuetWorkspace,
) -> QueryPassOutput {
    if batch.is_empty() {
        return (0.0, 1.0, None);
    }
    let rows: Vec<&Vec<Vec<IdPredicate>>> = batch.iter().map(|p| &p.preds).collect();
    model.fill_input(&rows, ws);
    let logits = model.made_mut().forward(ws.input());
    let sizes = model.output_sizes();

    let mut grad_logits = Matrix::zeros(logits.rows(), logits.cols());
    let mut loss_sum = 0.0f64;
    let mut q_sum = 0.0f64;
    let scale = lambda / batch.len() as f64;
    let ln2 = std::f64::consts::LN_2;

    for (r, pq) in batch.iter().enumerate() {
        let row = logits.row(r);
        // Per-column softmax, restricted mass and the product selectivity.
        // Only constrained columns are kept: (column, block offset, probs, mass).
        let mut offset = 0usize;
        let mut col_probs: Vec<(usize, usize, Vec<f32>, f64)> = Vec::new();
        let mut selectivity = 1.0f64;
        let mut contradiction = false;
        for (col, &size) in sizes.iter().enumerate() {
            let (lo, hi) = pq.intervals[col];
            if lo >= hi {
                contradiction = true;
            } else if !(lo == 0 && hi as usize == size) {
                let probs = softmax(&row[offset..offset + size]);
                let mass: f64 = probs[lo as usize..hi as usize].iter().map(|&p| p as f64).sum();
                let mass = mass.max(1e-9);
                selectivity *= mass;
                col_probs.push((col, offset, probs, mass));
            }
            offset += size;
        }
        if contradiction {
            // The estimate is exactly zero and carries no useful gradient.
            let actual = pq.actual.max(1.0);
            let q = actual; // est clamps to 1
            loss_sum += (q + 1.0).log2();
            q_sum += q;
            continue;
        }

        let est_raw = selectivity * num_rows;
        let est = est_raw.max(1.0);
        let actual = pq.actual.max(1.0);
        let q = if est >= actual { est / actual } else { actual / est };
        loss_sum += (q + 1.0).log2();
        q_sum += q;

        // dL/dq, dq/d est, d est/d sel. When the estimate sits below the
        // 1-row clamp we still propagate the unclamped subgradient so badly
        // underestimating queries keep producing a learning signal.
        let dl_dq = 1.0 / ((q + 1.0) * ln2);
        let dq_dest = if est >= actual { 1.0 / actual } else { -actual / (est * est) };
        let dest_dsel = num_rows;
        let dl_dsel = dl_dq * dq_dest * dest_dsel * scale;

        for (col, offset, probs, mass) in &col_probs {
            let dl_dmass = dl_dsel * (selectivity / mass);
            // Softmax backward: dL/dlogit_k = p_k * (in_range_k - mass) * dl_dmass
            let (lo, hi) = pq.intervals[*col];
            let grow = grad_logits.row_mut(r);
            for (k, &p) in probs.iter().enumerate() {
                let in_range = if (k as u32) >= lo && (k as u32) < hi { 1.0 } else { 0.0 };
                grow[offset + k] += (p as f64 * (in_range - *mass) * dl_dmass) as f32;
            }
        }
    }

    let grad_input = model.made_mut().backward(&grad_logits);
    let mean_loss = loss_sum / batch.len() as f64;
    let mean_q = q_sum / batch.len() as f64;
    if model.mpsns().is_empty() {
        (mean_loss, mean_q, None)
    } else {
        (mean_loss, mean_q, Some(grad_input))
    }
}

/// Convenience wrapper: shuffle-free deterministic selection of training rows
/// for throughput measurements (Table III): runs exactly `steps` optimizer
/// steps and reports tuples/second.
pub fn measure_training_throughput(
    table: &Table,
    config: &DuetConfig,
    workload: Option<TrainingWorkload<'_>>,
    steps: usize,
    seed: u64,
) -> f64 {
    let mut cfg = config.clone();
    // One epoch over a prefix that covers exactly `steps` batches.
    let rows_needed = (steps * cfg.batch_size).min(table.num_rows()).max(cfg.batch_size);
    cfg.epochs = 1;
    let sub = table.sample_prefix(rows_needed);
    let started = Instant::now();
    let mut processed = 0usize;
    let _ = train_model(&sub, &cfg, workload, seed, |stats| {
        processed += stats.tuples_processed;
    });
    let secs = started.elapsed().as_secs_f64();
    processed as f64 / secs.max(1e-9)
}

/// Deterministically pick `n` row indices (used by tests).
pub fn pick_rows(table: &Table, n: usize, seed: u64) -> Vec<usize> {
    let mut rng = seeded_rng(seed);
    (0..n.min(table.num_rows())).map(|_| rng.gen_range(0..table.num_rows())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpsnKind;
    use duet_data::datasets::census_like;
    use duet_query::{exact_cardinality, WorkloadSpec};

    #[test]
    fn data_training_reduces_loss() {
        let table = census_like(1_000, 21);
        let mut cfg = DuetConfig::small();
        cfg.epochs = 4;
        let mut losses = Vec::new();
        let _ = train_model(&table, &cfg, None, 7, |s| losses.push(s.data_loss));
        assert_eq!(losses.len(), 4);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "data loss should decrease: {losses:?}"
        );
    }

    #[test]
    fn hybrid_training_reports_query_loss() {
        let table = census_like(800, 22);
        let spec = WorkloadSpec::in_workload(&table, 64, 42);
        let queries = spec.generate(&table);
        let cards: Vec<u64> = queries.iter().map(|q| exact_cardinality(&table, q)).collect();
        let mut cfg = DuetConfig::small();
        cfg.epochs = 2;
        let workload = TrainingWorkload { queries: &queries, cardinalities: &cards };
        let mut saw_query_loss = false;
        let _ = train_model(&table, &cfg, Some(workload), 8, |s| {
            if s.query_loss > 0.0 {
                saw_query_loss = true;
            }
            assert!(s.mean_train_q_error >= 1.0);
        });
        assert!(saw_query_loss, "hybrid training should produce a supervised loss");
    }

    #[test]
    fn training_with_mpsn_updates_mpsn_parameters() {
        let table = census_like(400, 23);
        let mut cfg = DuetConfig::small().with_mpsn(MpsnKind::Mlp, 2);
        cfg.epochs = 1;
        cfg.batch_size = 64;
        let mut model_before = DuetModel::new(&table, &cfg, 5);
        let before: Vec<f32> = {
            let mut v = Vec::new();
            model_before.visit_params(&mut |p| v.push(p.data.mean()));
            v
        };
        let mut model_after = train_model(&table, &cfg, None, 5, |_| {});
        let after: Vec<f32> = {
            let mut v = Vec::new();
            model_after.visit_params(&mut |p| v.push(p.data.mean()));
            v
        };
        assert_eq!(before.len(), after.len());
        let changed =
            before.iter().zip(after.iter()).filter(|(a, b)| (*a - *b).abs() > 1e-9).count();
        assert!(
            changed > before.len() / 2,
            "most parameters (including MPSN) should move during training"
        );
    }

    #[test]
    fn throughput_measurement_is_positive() {
        let table = census_like(600, 24);
        let cfg = DuetConfig::small().with_epochs(1);
        let tput = measure_training_throughput(&table, &cfg, None, 2, 3);
        assert!(tput > 0.0);
    }
}
