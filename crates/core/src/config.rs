//! Configuration of the Duet estimator and its training loop.

use serde::{Deserialize, Serialize};

/// Which network embeds multiple predicates on a single column into the fixed
/// per-column input block (paper §IV-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MpsnKind {
    /// No MPSN: at most one predicate per column is supported and its encoding
    /// is fed to the autoregressive network directly.
    None,
    /// Per-predicate MLP embeddings summed together (order-invariant; the
    /// paper's recommended default).
    Mlp,
    /// A small recurrent network over the predicate sequence.
    Recurrent,
    /// A recursive network `out = MLP(E(pred) || out)`.
    Recursive,
}

/// Hyper-parameters of the Duet estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DuetConfig {
    /// Hidden layer widths of the autoregressive backbone.
    pub hidden_sizes: Vec<usize>,
    /// Use ResMADE (residual blocks) instead of a plain MADE.
    pub residual: bool,
    /// Expansion coefficient `µ` of Algorithm 1: every tuple in a batch is
    /// replicated `µ` times with independently sampled predicates.
    pub expand_mu: usize,
    /// Probability that a column receives no predicate (wildcard) in a sampled
    /// virtual tuple; mirrors Naru's wildcard skipping.
    pub wildcard_prob: f64,
    /// Trade-off coefficient `λ` of the hybrid loss
    /// `L = L_data + λ·log2(QError + 1)`.
    pub lambda: f64,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Number of passes over the table.
    pub epochs: usize,
    /// Mini-batch size (number of anchor tuples per step, before `µ`).
    pub batch_size: usize,
    /// Per-element gradient clip (0 disables clipping).
    pub grad_clip: f32,
    /// Multiple-predicate support network.
    pub mpsn: MpsnKind,
    /// Hidden width of the MPSN networks.
    pub mpsn_hidden: usize,
    /// Maximum number of predicates per column sampled during training when an
    /// MPSN is enabled.
    pub max_predicates_per_column: usize,
    /// Number of query examples per hybrid-training step (0 keeps training
    /// purely data-driven even if a workload is supplied).
    pub query_batch_size: usize,
}

impl DuetConfig {
    /// Tiny configuration for unit tests and doc examples: trains in well under
    /// a second on a few thousand rows.
    pub fn small() -> Self {
        Self {
            hidden_sizes: vec![32, 32],
            residual: false,
            expand_mu: 2,
            wildcard_prob: 0.3,
            lambda: 0.1,
            learning_rate: 5e-3,
            epochs: 3,
            batch_size: 128,
            grad_clip: 8.0,
            mpsn: MpsnKind::None,
            mpsn_hidden: 32,
            max_predicates_per_column: 1,
            query_batch_size: 32,
        }
    }

    /// The paper's DMV architecture: MADE with hidden units
    /// 512, 256, 512, 128, 1024 (§V-A4).
    pub fn paper_dmv() -> Self {
        Self {
            hidden_sizes: vec![512, 256, 512, 128, 1024],
            residual: false,
            expand_mu: 4,
            wildcard_prob: 0.3,
            lambda: 0.1,
            learning_rate: 2e-3,
            epochs: 20,
            batch_size: 2048,
            grad_clip: 8.0,
            mpsn: MpsnKind::None,
            mpsn_hidden: 64,
            max_predicates_per_column: 1,
            query_batch_size: 256,
        }
    }

    /// The paper's Kddcup98 / Census architecture: 2-layer ResMADE with 128
    /// hidden units (§V-A4).
    pub fn paper_resmade() -> Self {
        Self {
            hidden_sizes: vec![128, 128],
            residual: true,
            expand_mu: 4,
            wildcard_prob: 0.3,
            lambda: 0.1,
            learning_rate: 2e-3,
            epochs: 20,
            batch_size: 100,
            grad_clip: 8.0,
            mpsn: MpsnKind::None,
            mpsn_hidden: 64,
            max_predicates_per_column: 1,
            query_batch_size: 64,
        }
    }

    /// Enable an MPSN variant (Table I / §IV-F).
    pub fn with_mpsn(mut self, kind: MpsnKind, max_predicates: usize) -> Self {
        self.mpsn = kind;
        self.max_predicates_per_column = max_predicates.max(1);
        self
    }

    /// Override the trade-off coefficient λ (Figure 5 sweeps this).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Override the number of epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Override the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Basic validity check; called by the trainer.
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden_sizes.is_empty() {
            return Err("hidden_sizes must not be empty".into());
        }
        if self.expand_mu == 0 {
            return Err("expand_mu must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.wildcard_prob) {
            return Err("wildcard_prob must be in [0, 1)".into());
        }
        if self.lambda < 0.0 {
            return Err("lambda must be non-negative".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.mpsn == MpsnKind::None && self.max_predicates_per_column > 1 {
            return Err("multiple predicates per column require an MPSN".into());
        }
        Ok(())
    }
}

impl Default for DuetConfig {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [DuetConfig::small(), DuetConfig::paper_dmv(), DuetConfig::paper_resmade()] {
            assert!(cfg.validate().is_ok(), "{cfg:?}");
        }
    }

    #[test]
    fn builders_apply_overrides() {
        let cfg = DuetConfig::small()
            .with_mpsn(MpsnKind::Mlp, 3)
            .with_lambda(0.01)
            .with_epochs(7)
            .with_batch_size(33);
        assert_eq!(cfg.mpsn, MpsnKind::Mlp);
        assert_eq!(cfg.max_predicates_per_column, 3);
        assert_eq!(cfg.lambda, 0.01);
        assert_eq!(cfg.epochs, 7);
        assert_eq!(cfg.batch_size, 33);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = DuetConfig::small();
        cfg.hidden_sizes.clear();
        assert!(cfg.validate().is_err());

        let mut cfg = DuetConfig::small();
        cfg.expand_mu = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = DuetConfig::small();
        cfg.max_predicates_per_column = 4; // without an MPSN
        assert!(cfg.validate().is_err());

        let mut cfg = DuetConfig::small();
        cfg.wildcard_prob = 1.5;
        assert!(cfg.validate().is_err());
    }
}
