//! MSCN-lite: a query-driven regression baseline in the spirit of Kipf et
//! al.'s Multi-Set Convolutional Network (the single-table variant with
//! sample bitmaps).
//!
//! Featurization per query:
//! * per column: `[constrained flag | one-hot op | normalized literal]`,
//! * a bitmap over a small materialized row sample (1 bit per sample row,
//!   set when the row satisfies the query) — the "MSCN (bitmaps)" variant the
//!   paper compares against.
//!
//! The model is a plain MLP trained with MSE on min-max-normalized
//! `log(cardinality)` labels, which is the standard MSCN objective. Being
//! query-driven, it inherits the workload-drift weakness the paper
//! demonstrates: accuracy on workloads unlike the training workload degrades.

use duet_data::Table;
use duet_nn::loss::mse;
use duet_nn::{seeded_rng, Adam, GradClip, Layer, Matrix, Mlp};
use duet_query::{CardinalityEstimator, PredOp, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the MSCN-lite baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MscnConfig {
    /// Hidden layer widths.
    pub hidden_sizes: Vec<usize>,
    /// Training epochs over the labelled workload.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Number of materialized sample rows used for the bitmap feature.
    pub bitmap_samples: usize,
}

impl MscnConfig {
    /// Small test configuration.
    pub fn small() -> Self {
        Self {
            hidden_sizes: vec![64, 32],
            epochs: 30,
            batch_size: 64,
            learning_rate: 1e-3,
            bitmap_samples: 64,
        }
    }

    /// Configuration comparable to the paper's MSCN baseline.
    pub fn paper() -> Self {
        Self {
            hidden_sizes: vec![256, 128],
            epochs: 100,
            batch_size: 128,
            learning_rate: 1e-3,
            bitmap_samples: 1000,
        }
    }
}

/// The trained MSCN-lite estimator.
#[derive(Debug, Clone)]
pub struct MscnEstimator {
    mlp: Mlp,
    schema: Table,
    sample: Table,
    num_rows: usize,
    min_log: f64,
    max_log: f64,
    name: String,
}

impl MscnEstimator {
    /// Train on a labelled workload.
    pub fn train(
        table: &Table,
        queries: &[Query],
        cardinalities: &[u64],
        config: &MscnConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(queries.len(), cardinalities.len(), "labels required for every query");
        assert!(!queries.is_empty(), "MSCN needs a non-empty training workload");
        let sample = materialize_sample(table, config.bitmap_samples, seed);
        let feature_width = feature_width(table, sample.num_rows());

        // Normalize log-cardinalities to [0, 1] (standard MSCN target scaling).
        let logs: Vec<f64> = cardinalities.iter().map(|&c| (c.max(1) as f64).ln()).collect();
        let min_log = logs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_log = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(min_log + 1e-9);

        let mut sizes = vec![feature_width];
        sizes.extend(&config.hidden_sizes);
        sizes.push(1);
        let mut rng = seeded_rng(seed);
        let mut mlp = Mlp::new(&sizes, &mut rng);
        let mut adam = Adam::new(config.learning_rate).with_clip(GradClip::Value(4.0));

        let features: Vec<Vec<f32>> =
            queries.iter().map(|q| featurize(table, &sample, q)).collect();
        let targets: Vec<f32> =
            logs.iter().map(|&l| ((l - min_log) / (max_log - min_log)) as f32).collect();

        let mut order: Vec<usize> = (0..queries.len()).collect();
        let mut shuffle_rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..config.epochs {
            for i in (1..order.len()).rev() {
                let j = shuffle_rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(config.batch_size) {
                let mut x = Matrix::zeros(chunk.len(), feature_width);
                let mut y = Matrix::zeros(chunk.len(), 1);
                for (r, &idx) in chunk.iter().enumerate() {
                    x.row_mut(r).copy_from_slice(&features[idx]);
                    y.set(r, 0, targets[idx]);
                }
                mlp.zero_grad();
                let pred = mlp.forward(&x);
                let (_, grad) = mse(&pred, &y);
                let _ = mlp.backward(&grad);
                adam.step(&mut mlp);
            }
        }

        Self {
            mlp,
            schema: table.schema_only(),
            sample,
            num_rows: table.num_rows(),
            min_log,
            max_log,
            name: "mscn".into(),
        }
    }
}

fn materialize_sample(table: &Table, n: usize, seed: u64) -> Table {
    let n = n.clamp(1, table.num_rows().max(1));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
    let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..table.num_rows())).collect();
    let columns = table
        .columns()
        .iter()
        .map(|c| {
            let data: Vec<u32> = rows.iter().map(|&r| c.id_at(r)).collect();
            duet_data::Column::from_encoded(c.name().to_string(), c.dictionary().to_vec(), data)
        })
        .collect();
    Table::new(format!("{}_bitmap_sample", table.name()), columns)
}

fn feature_width(table: &Table, sample_rows: usize) -> usize {
    table.num_columns() * (2 + PredOp::ALL.len()) + sample_rows
}

/// Build the feature vector of one query.
fn featurize(schema: &Table, sample: &Table, query: &Query) -> Vec<f32> {
    let per_col = 2 + PredOp::ALL.len();
    let mut out = vec![0.0f32; schema.num_columns() * per_col + sample.num_rows()];
    for (col, preds) in query.predicates_by_column() {
        let base = col * per_col;
        out[base] = 1.0; // constrained flag
                         // Encode the first predicate (MSCN's featurization has one slot per
                         // column); additional predicates are reflected by the bitmap feature.
        if let Some(p) = preds.first() {
            out[base + 1 + p.op.index()] = 1.0;
            let ndv = schema.column(col).ndv().max(1) as f32;
            let id = schema.column(col).lower_bound(&p.value) as f32;
            out[base + 1 + PredOp::ALL.len()] = id / ndv;
        }
    }
    // Bitmap over the materialized sample.
    let offset = schema.num_columns() * per_col;
    let intervals = query.column_intervals(sample);
    for row in 0..sample.num_rows() {
        let matches = sample
            .row_ids(row)
            .iter()
            .enumerate()
            .all(|(c, &id)| id >= intervals[c].0 && id < intervals[c].1);
        if matches {
            out[offset + row] = 1.0;
        }
    }
    out
}

impl CardinalityEstimator for MscnEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&mut self, query: &Query) -> f64 {
        let features = featurize(&self.schema, &self.sample, query);
        let x = Matrix::from_vec(1, features.len(), features);
        let pred = self.mlp.forward_inference(&x).get(0, 0) as f64;
        let log_card = pred.clamp(0.0, 1.0) * (self.max_log - self.min_log) + self.min_log;
        log_card.exp().clamp(0.0, self.num_rows as f64)
    }

    fn size_bytes(&self) -> usize {
        let mut mlp = self.mlp.clone();
        mlp.param_count() * 4 + self.sample.num_cells() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_data::datasets::census_like;
    use duet_query::{exact_cardinality, q_error, QErrorSummary, WorkloadSpec};

    fn setup() -> (Table, Vec<Query>, Vec<u64>) {
        let table = census_like(2_000, 71);
        let queries = WorkloadSpec::in_workload(&table, 400, 42).generate(&table);
        let cards: Vec<u64> = queries.iter().map(|q| exact_cardinality(&table, q)).collect();
        (table, queries, cards)
    }

    #[test]
    fn learns_the_training_workload() {
        let (table, queries, cards) = setup();
        let mut mscn = MscnEstimator::train(&table, &queries, &cards, &MscnConfig::small(), 3);
        let errors: Vec<f64> = queries
            .iter()
            .zip(&cards)
            .take(100)
            .map(|(q, &c)| q_error(mscn.estimate(q), c as f64))
            .collect();
        let s = QErrorSummary::from_errors(&errors);
        assert!(s.median < 8.0, "MSCN should fit its training workload: {s:?}");
    }

    #[test]
    fn accuracy_degrades_under_workload_drift() {
        let (table, queries, cards) = setup();
        let mut mscn = MscnEstimator::train(&table, &queries, &cards, &MscnConfig::small(), 3);
        let eval = |est: &mut MscnEstimator, qs: &[Query]| {
            let errs: Vec<f64> = qs
                .iter()
                .map(|q| q_error(est.estimate(q), exact_cardinality(&table, q) as f64))
                .collect();
            QErrorSummary::from_errors(&errs).median
        };
        let in_q = eval(&mut mscn, &queries[..150]);
        let drifted = WorkloadSpec::random(&table, 150, 1234).generate(&table);
        let rand_q = eval(&mut mscn, &drifted);
        assert!(
            rand_q >= in_q * 0.8,
            "random-workload error ({rand_q}) should not beat in-workload error ({in_q}) meaningfully"
        );
    }

    #[test]
    fn estimates_stay_within_table_bounds() {
        let (table, queries, cards) = setup();
        let mut mscn = MscnEstimator::train(&table, &queries, &cards, &MscnConfig::small(), 5);
        for q in WorkloadSpec::random(&table, 50, 9).generate(&table) {
            let e = mscn.estimate(&q);
            assert!(e >= 0.0 && e <= table.num_rows() as f64);
        }
        assert!(mscn.size_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "non-empty training workload")]
    fn empty_workload_rejected() {
        let table = census_like(100, 72);
        let _ = MscnEstimator::train(&table, &[], &[], &MscnConfig::small(), 1);
    }
}
