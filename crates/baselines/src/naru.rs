//! Naru (Yang et al., VLDB 2020): a deep autoregressive model over *tuple
//! values*, estimated with **progressive sampling** for range predicates.
//!
//! This is the estimator Duet is built against: it shares the same MADE
//! backbone but, because the model only conditions on concrete values, every
//! constrained column requires one forward pass over a batch of `s` samples —
//! O(n) forwards per query, GPU-hungry and non-deterministic. The training and
//! inference code here is shared with the UAE baseline.

use duet_data::Table;
use duet_nn::{
    grouped_cross_entropy, seeded_rng, softmax_into, Adam, GradClip, Layer, Made, MadeConfig,
    Matrix,
};
use duet_query::{CardinalityEstimator, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Hyper-parameters of the Naru baseline (and, by extension, UAE).
#[derive(Debug, Clone, PartialEq)]
pub struct NaruConfig {
    /// Hidden layer widths of the MADE backbone.
    pub hidden_sizes: Vec<usize>,
    /// Use ResMADE instead of a plain MADE.
    pub residual: bool,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Probability of masking a column to the wildcard token during training
    /// (Naru's wildcard skipping).
    pub wildcard_prob: f64,
    /// Number of progressive samples per estimation (the paper uses 2,000).
    pub num_samples: usize,
}

impl NaruConfig {
    /// Small configuration for tests.
    pub fn small() -> Self {
        Self {
            hidden_sizes: vec![32, 32],
            residual: false,
            epochs: 3,
            batch_size: 128,
            learning_rate: 5e-3,
            wildcard_prob: 0.3,
            num_samples: 200,
        }
    }

    /// The paper's DMV architecture (hidden 512, 256, 512, 128, 1024).
    pub fn paper_dmv() -> Self {
        Self {
            hidden_sizes: vec![512, 256, 512, 128, 1024],
            residual: false,
            epochs: 20,
            batch_size: 2048,
            learning_rate: 2e-3,
            wildcard_prob: 0.3,
            num_samples: 2000,
        }
    }

    /// The paper's Kddcup98/Census architecture (2-layer ResMADE, 128 units).
    pub fn paper_resmade() -> Self {
        Self {
            hidden_sizes: vec![128, 128],
            residual: true,
            epochs: 20,
            batch_size: 100,
            learning_rate: 2e-3,
            wildcard_prob: 0.3,
            num_samples: 2000,
        }
    }

    /// Override the number of epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Override the number of progressive samples.
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.num_samples = samples.max(1);
        self
    }
}

/// Per-column binary value encoding used by Naru/UAE:
/// `[binary(value id) | present flag]`; wildcard columns are all zeros.
#[derive(Debug, Clone)]
pub struct ValueEncoder {
    value_bits: Vec<usize>,
    ndvs: Vec<usize>,
}

impl ValueEncoder {
    /// Build the encoder from a table's dictionaries.
    pub fn new(table: &Table) -> Self {
        let ndvs = table.ndvs();
        let value_bits = ndvs
            .iter()
            .map(|&ndv| {
                let mut bits = 0;
                let mut x = ndv.saturating_sub(1);
                while x > 0 {
                    bits += 1;
                    x >>= 1;
                }
                bits.max(1)
            })
            .collect();
        Self { value_bits, ndvs }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.ndvs.len()
    }

    /// Width of column `col`'s input block (+1 for the presence flag).
    pub fn block_width(&self, col: usize) -> usize {
        self.value_bits[col] + 1
    }

    /// All block widths.
    pub fn block_widths(&self) -> Vec<usize> {
        (0..self.num_columns()).map(|c| self.block_width(c)).collect()
    }

    /// Per-column output sizes.
    pub fn output_sizes(&self) -> Vec<usize> {
        self.ndvs.clone()
    }

    /// Total input width.
    pub fn total_width(&self) -> usize {
        (0..self.num_columns()).map(|c| self.block_width(c)).sum()
    }

    /// Offset of column `col` in the input vector.
    pub fn block_offset(&self, col: usize) -> usize {
        (0..col).map(|c| self.block_width(c)).sum()
    }

    /// Write the encoding of `value_id` into `out` (presence flag set).
    pub fn encode_value_into(&self, col: usize, value_id: u32, out: &mut [f32]) {
        let bits = self.value_bits[col];
        for (b, slot) in out.iter_mut().take(bits).enumerate() {
            *slot = ((value_id >> b) & 1) as f32;
        }
        out[bits] = 1.0;
    }
}

/// The trained Naru estimator.
#[derive(Debug, Clone)]
pub struct NaruEstimator {
    pub(crate) made: Made,
    pub(crate) encoder: ValueEncoder,
    pub(crate) schema: Table,
    pub(crate) num_rows: usize,
    pub(crate) num_samples: usize,
    rng: SmallRng,
    name: String,
}

/// Per-epoch statistics of Naru/UAE training (used by Figures 8/9).
#[derive(Debug, Clone, PartialEq)]
pub struct NaruEpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Mean cross-entropy loss.
    pub data_loss: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Tuples processed.
    pub tuples_processed: usize,
}

impl NaruEstimator {
    /// Train Naru on `table`.
    pub fn train(table: &Table, config: &NaruConfig, seed: u64) -> Self {
        Self::train_with_stats(table, config, seed, |_| {})
    }

    /// Train Naru, reporting per-epoch statistics.
    pub fn train_with_stats(
        table: &Table,
        config: &NaruConfig,
        seed: u64,
        mut on_epoch: impl FnMut(&NaruEpochStats),
    ) -> Self {
        Self::train_with_eval(table, config, seed, |stats, _| on_epoch(stats))
    }

    /// Train Naru, handing the per-epoch callback a snapshot estimator so
    /// convergence experiments can compute Q-Errors after every epoch.
    pub fn train_with_eval(
        table: &Table,
        config: &NaruConfig,
        seed: u64,
        mut on_epoch: impl FnMut(&NaruEpochStats, &mut NaruEstimator),
    ) -> Self {
        let mut hook = |stats: &NaruEpochStats, made: &Made, encoder: &ValueEncoder| {
            let mut snapshot = NaruEstimator::from_parts(
                made.clone(),
                encoder.clone(),
                table,
                config.num_samples,
                seed,
                "naru",
            );
            on_epoch(stats, &mut snapshot);
        };
        let (made, encoder) = train_value_model(table, config, seed, &mut hook);
        Self {
            made,
            encoder,
            schema: table.schema_only(),
            num_rows: table.num_rows(),
            num_samples: config.num_samples,
            rng: SmallRng::seed_from_u64(seed ^ 0xdead_beef),
            name: "naru".into(),
        }
    }

    /// Wrap an already-trained model (used by the UAE baseline).
    pub(crate) fn from_parts(
        made: Made,
        encoder: ValueEncoder,
        table: &Table,
        num_samples: usize,
        seed: u64,
        name: &str,
    ) -> Self {
        Self {
            made,
            encoder,
            schema: table.schema_only(),
            num_rows: table.num_rows(),
            num_samples,
            rng: SmallRng::seed_from_u64(seed ^ 0xdead_beef),
            name: name.into(),
        }
    }

    /// Re-seed the internal sampling RNG (progressive sampling is stochastic;
    /// the stability experiments reset this to show result variance).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// Number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.made.num_parameters()
    }

    /// Progressive-sampling estimation with a phase breakdown:
    /// `(cardinality, model forward time, sampling/bookkeeping time, forward passes)`.
    #[allow(clippy::needless_range_loop)] // `sample` indexes weights and logits in lockstep
    pub fn estimate_with_breakdown(&mut self, query: &Query) -> (f64, Duration, Duration, usize) {
        let intervals = query.column_intervals(&self.schema);
        let mut constrained: Vec<usize> = query.constrained_columns();
        constrained.sort_unstable();
        if constrained.is_empty() {
            return (self.num_rows as f64, Duration::ZERO, Duration::ZERO, 0);
        }
        if constrained.iter().any(|&c| intervals[c].0 >= intervals[c].1) {
            return (0.0, Duration::ZERO, Duration::ZERO, 0);
        }
        let s = self.num_samples;
        let width = self.encoder.total_width();
        let mut input = Matrix::zeros(s, width);
        let mut weights = vec![1.0f64; s];
        let mut forward_time = Duration::ZERO;
        let mut sample_time = Duration::ZERO;
        let mut forwards = 0usize;
        // Scratch softmax staging, reused across samples and columns.
        let mut probs: Vec<f32> = Vec::new();

        for &col in &constrained {
            let t0 = Instant::now();
            let logits = self.made.forward_inference(&input);
            forward_time += t0.elapsed();
            forwards += 1;

            let t1 = Instant::now();
            let (lo, hi) = intervals[col];
            let out_off: usize = self.encoder.output_sizes()[..col].iter().sum();
            let size = self.encoder.output_sizes()[col];
            let in_off = self.encoder.block_offset(col);
            let block_w = self.encoder.block_width(col);
            probs.clear();
            probs.resize(size, 0.0);
            for sample in 0..s {
                if weights[sample] == 0.0 {
                    continue;
                }
                softmax_into(&logits.row(sample)[out_off..out_off + size], &mut probs);
                let mass: f64 = probs[lo as usize..hi as usize].iter().map(|&p| p as f64).sum();
                weights[sample] *= mass;
                if mass <= 0.0 {
                    weights[sample] = 0.0;
                    continue;
                }
                // Sample a value from the restricted, re-normalized distribution
                // to condition the remaining columns on.
                let u: f64 = self.rng.gen::<f64>() * mass;
                let mut acc = 0.0f64;
                let mut chosen = lo;
                for k in lo..hi {
                    acc += probs[k as usize] as f64;
                    if acc >= u {
                        chosen = k;
                        break;
                    }
                }
                let row = input.row_mut(sample);
                self.encoder.encode_value_into(col, chosen, &mut row[in_off..in_off + block_w]);
            }
            sample_time += t1.elapsed();
        }
        let sel = weights.iter().sum::<f64>() / s as f64;
        (sel * self.num_rows as f64, forward_time, sample_time, forwards)
    }
}

impl CardinalityEstimator for NaruEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&mut self, query: &Query) -> f64 {
        self.estimate_with_breakdown(query).0
    }

    fn size_bytes(&self) -> usize {
        self.made.size_bytes()
    }
}

/// Shared training loop for the value-autoregressive model (Naru and UAE's
/// unsupervised part): maximum likelihood on tuples with wildcard masking.
pub(crate) fn train_value_model(
    table: &Table,
    config: &NaruConfig,
    seed: u64,
    on_epoch: &mut dyn FnMut(&NaruEpochStats, &Made, &ValueEncoder),
) -> (Made, ValueEncoder) {
    let encoder = ValueEncoder::new(table);
    let made_config = if config.residual {
        MadeConfig::res_made(
            encoder.block_widths(),
            encoder.output_sizes(),
            config.hidden_sizes[0],
            config.hidden_sizes.len(),
        )
    } else {
        MadeConfig::made(
            encoder.block_widths(),
            encoder.output_sizes(),
            config.hidden_sizes.clone(),
        )
    };
    let mut rng = seeded_rng(seed);
    let mut made = Made::new(made_config, &mut rng);
    let mut adam = Adam::new(config.learning_rate).with_clip(GradClip::Value(8.0));
    let blocks = encoder.output_sizes();

    let mut order: Vec<usize> = (0..table.num_rows()).collect();
    for epoch in 0..config.epochs {
        let started = Instant::now();
        // Fisher-Yates shuffle with the training RNG.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let mut input = Matrix::zeros(chunk.len(), encoder.total_width());
            let mut labels: Vec<Vec<usize>> = Vec::with_capacity(chunk.len());
            for (r, &row) in chunk.iter().enumerate() {
                let mut row_labels = Vec::with_capacity(table.num_columns());
                let irow = input.row_mut(r);
                for col in 0..table.num_columns() {
                    let id = table.column(col).id_at(row);
                    row_labels.push(id as usize);
                    if rng.gen::<f64>() >= config.wildcard_prob {
                        let off = encoder.block_offset(col);
                        let w = encoder.block_width(col);
                        encoder.encode_value_into(col, id, &mut irow[off..off + w]);
                    }
                }
                labels.push(row_labels);
            }
            made.zero_grad();
            let logits = made.forward(&input);
            let (loss, grad) = grouped_cross_entropy(&logits, &blocks, &labels);
            let _ = made.backward(&grad);
            adam.step(&mut made);
            loss_sum += loss as f64;
            batches += 1;
        }
        on_epoch(
            &NaruEpochStats {
                epoch,
                data_loss: loss_sum / batches.max(1) as f64,
                seconds: started.elapsed().as_secs_f64(),
                tuples_processed: order.len(),
            },
            &made,
            &encoder,
        );
    }
    (made, encoder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_data::datasets::census_like;
    use duet_data::Value;
    use duet_query::{exact_cardinality, q_error, PredOp, QErrorSummary, WorkloadSpec};

    fn trained(rows: usize) -> (Table, NaruEstimator) {
        let table = census_like(rows, 51);
        let cfg = NaruConfig::small().with_epochs(3).with_samples(100);
        let naru = NaruEstimator::train(&table, &cfg, 5);
        (table, naru)
    }

    #[test]
    fn unconstrained_query_returns_table_size() {
        let (table, mut naru) = trained(400);
        assert_eq!(naru.estimate(&Query::all()), table.num_rows() as f64);
    }

    #[test]
    fn contradictory_query_returns_zero() {
        let (_, mut naru) = trained(300);
        let q = Query::all().and(0, PredOp::Lt, Value::Int(1)).and(0, PredOp::Gt, Value::Int(60));
        assert_eq!(naru.estimate(&q), 0.0);
    }

    #[test]
    fn estimates_are_reasonable_after_training() {
        let (table, mut naru) = trained(1_200);
        let queries = WorkloadSpec::random(&table, 40, 77).generate(&table);
        let errors: Vec<f64> = queries
            .iter()
            .map(|q| q_error(naru.estimate(q), exact_cardinality(&table, q) as f64))
            .collect();
        let summary = QErrorSummary::from_errors(&errors);
        assert!(summary.median < 10.0, "median Q-Error too high: {summary:?}");
    }

    #[test]
    fn progressive_sampling_is_stochastic_across_reseeds() {
        let (table, mut naru) = trained(600);
        // A multi-column range query where sampling matters.
        let q = WorkloadSpec::random(&table, 50, 3)
            .generate(&table)
            .into_iter()
            .find(|q| q.constrained_columns().len() >= 3)
            .expect("some query with >= 3 columns");
        naru.reseed(1);
        let a = naru.estimate(&q);
        naru.reseed(2);
        let b = naru.estimate(&q);
        // Not a hard guarantee for every query, but with 100 samples over a
        // trained model two seeds virtually never coincide exactly.
        assert_ne!(a, b, "progressive sampling should be seed-dependent");
    }

    #[test]
    fn breakdown_counts_one_forward_per_constrained_column() {
        let (table, mut naru) = trained(300);
        let q = Query::all()
            .and(0, PredOp::Le, Value::Int(40))
            .and(3, PredOp::Ge, Value::Int(2))
            .and(7, PredOp::Le, Value::Int(4));
        let (_, _, _, forwards) = naru.estimate_with_breakdown(&q);
        assert_eq!(forwards, 3);
        let _ = table;
    }

    #[test]
    fn size_is_reported() {
        let (_, naru) = trained(200);
        assert!(naru.size_bytes() > 0);
    }
}
