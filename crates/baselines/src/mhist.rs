//! MHist: a multi-dimensional histogram built by greedy recursive splitting
//! (in the spirit of MHIST-2 / MaxDiff of Poosala & Ioannidis).
//!
//! The histogram starts with a single bucket covering the whole id space and
//! repeatedly splits the bucket with the highest row count along its widest
//! dimension at the median value, until the bucket budget is exhausted. Each
//! bucket stores its per-dimension id bounds and its row count; estimation
//! assumes uniformity inside a bucket and sums each bucket's overlap with the
//! query box.

use duet_data::Table;
use duet_query::{CardinalityEstimator, Query};

/// One bucket of the multi-dimensional histogram.
#[derive(Debug, Clone)]
struct Bucket {
    /// Inclusive-exclusive id bounds per dimension.
    bounds: Vec<(u32, u32)>,
    /// Number of rows inside the bucket.
    count: u64,
    /// Row indices (only kept while building; cleared afterwards).
    rows: Vec<u32>,
}

/// A multi-dimensional equi-depth-style histogram estimator.
#[derive(Debug, Clone)]
pub struct MHist {
    buckets: Vec<Bucket>,
    num_rows: usize,
    schema: Table,
    name: String,
}

impl MHist {
    /// Build a histogram with at most `max_buckets` buckets.
    pub fn new(table: &Table, max_buckets: usize) -> Self {
        assert!(max_buckets >= 1, "need at least one bucket");
        let ncols = table.num_columns();
        let mut buckets = vec![Bucket {
            bounds: table.columns().iter().map(|c| (0u32, c.ndv() as u32)).collect(),
            count: table.num_rows() as u64,
            rows: (0..table.num_rows() as u32).collect(),
        }];

        while buckets.len() < max_buckets {
            // Split the most populated bucket that can still be split.
            let Some(target) = buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| b.count > 1 && b.bounds.iter().any(|&(lo, hi)| hi - lo > 1))
                .max_by_key(|(_, b)| b.count)
                .map(|(i, _)| i)
            else {
                break;
            };
            let bucket = buckets.swap_remove(target);
            match split_bucket(table, bucket, ncols) {
                Some((left, right)) => {
                    buckets.push(left);
                    buckets.push(right);
                }
                None => break,
            }
        }
        for b in &mut buckets {
            b.rows.clear();
            b.rows.shrink_to_fit();
        }
        Self {
            buckets,
            num_rows: table.num_rows(),
            schema: table.schema_only(),
            name: "mhist".into(),
        }
    }

    /// Number of buckets actually built.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }
}

/// Split a bucket at the median of its most-spread dimension (by actual data,
/// not domain bounds). Returns `None` when every dimension is constant.
fn split_bucket(table: &Table, bucket: Bucket, ncols: usize) -> Option<(Bucket, Bucket)> {
    // Choose the dimension with the largest number of distinct ids among the
    // bucket's rows.
    let mut best_dim = None;
    let mut best_spread = 1u32;
    for dim in 0..ncols {
        let (lo, hi) = bucket.bounds[dim];
        if hi - lo <= 1 {
            continue;
        }
        let col = table.column(dim);
        let mut min_id = u32::MAX;
        let mut max_id = 0u32;
        for &r in &bucket.rows {
            let id = col.id_at(r as usize);
            min_id = min_id.min(id);
            max_id = max_id.max(id);
        }
        let spread = max_id.saturating_sub(min_id) + 1;
        if spread > best_spread {
            best_spread = spread;
            best_dim = Some(dim);
        }
    }
    let dim = best_dim?;
    let col = table.column(dim);
    let mut ids: Vec<u32> = bucket.rows.iter().map(|&r| col.id_at(r as usize)).collect();
    ids.sort_unstable();
    let median = ids[ids.len() / 2].max(bucket.bounds[dim].0 + 1);

    let (mut left_rows, mut right_rows) = (Vec::new(), Vec::new());
    for &r in &bucket.rows {
        if col.id_at(r as usize) < median {
            left_rows.push(r);
        } else {
            right_rows.push(r);
        }
    }
    if left_rows.is_empty() || right_rows.is_empty() {
        return None;
    }
    let mut left_bounds = bucket.bounds.clone();
    left_bounds[dim] = (bucket.bounds[dim].0, median);
    let mut right_bounds = bucket.bounds;
    right_bounds[dim] = (median, right_bounds[dim].1);
    Some((
        Bucket { bounds: left_bounds, count: left_rows.len() as u64, rows: left_rows },
        Bucket { bounds: right_bounds, count: right_rows.len() as u64, rows: right_rows },
    ))
}

impl CardinalityEstimator for MHist {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&mut self, query: &Query) -> f64 {
        let intervals = query.column_intervals(&self.schema);
        let mut total = 0.0f64;
        for bucket in &self.buckets {
            let mut fraction = 1.0f64;
            for (dim, &(qlo, qhi)) in intervals.iter().enumerate() {
                let (blo, bhi) = bucket.bounds[dim];
                let lo = qlo.max(blo);
                let hi = qhi.min(bhi);
                if lo >= hi {
                    fraction = 0.0;
                    break;
                }
                // Uniformity assumption inside the bucket.
                fraction *= (hi - lo) as f64 / (bhi - blo) as f64;
            }
            total += fraction * bucket.count as f64;
        }
        total.min(self.num_rows as f64)
    }

    fn size_bytes(&self) -> usize {
        self.buckets.iter().map(|b| b.bounds.len() * std::mem::size_of::<(u32, u32)>() + 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_data::datasets::census_like;
    use duet_data::Value;
    use duet_query::{exact_cardinality, q_error, PredOp, WorkloadSpec};

    #[test]
    fn builds_requested_number_of_buckets() {
        let t = census_like(2_000, 1);
        let h = MHist::new(&t, 64);
        assert!(h.num_buckets() > 1 && h.num_buckets() <= 64);
        assert!(h.size_bytes() > 0);
    }

    #[test]
    fn bucket_counts_cover_all_rows() {
        let t = census_like(1_000, 2);
        let h = MHist::new(&t, 32);
        let total: u64 = h.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 1_000);
    }

    #[test]
    fn unconstrained_query_estimates_full_table() {
        let t = census_like(800, 3);
        let mut h = MHist::new(&t, 32);
        assert!((h.estimate(&Query::all()) - 800.0).abs() < 1e-6);
    }

    #[test]
    fn more_buckets_do_not_hurt_single_column_accuracy() {
        let t = census_like(3_000, 4);
        let mut coarse = MHist::new(&t, 4);
        let mut fine = MHist::new(&t, 256);
        let q = Query::all().and(0, PredOp::Le, Value::Int(20));
        let truth = exact_cardinality(&t, &q) as f64;
        let e_coarse = q_error(coarse.estimate(&q), truth);
        let e_fine = q_error(fine.estimate(&q), truth);
        assert!(e_fine <= e_coarse * 1.5 + 1e-9, "fine {e_fine} vs coarse {e_coarse}");
    }

    #[test]
    fn estimates_are_bounded_by_table_size() {
        let t = census_like(1_500, 5);
        let mut h = MHist::new(&t, 128);
        for q in WorkloadSpec::random(&t, 50, 6).generate(&t) {
            let e = h.estimate(&q);
            assert!((0.0..=1_500.0).contains(&e));
        }
    }
}
