//! The uniform-sampling estimator ("Sampling" in Table II): keep `p%` of the
//! rows in memory and evaluate queries exactly on the sample, scaling the
//! count up by the sampling rate.

use duet_data::Table;
use duet_query::{exact_cardinality, CardinalityEstimator, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A uniform row-sample estimator.
#[derive(Debug, Clone)]
pub struct SamplingEstimator {
    sample: Table,
    scale: f64,
    name: String,
}

impl SamplingEstimator {
    /// Sample `fraction` of `table`'s rows (at least one row).
    pub fn new(table: &Table, fraction: f64, seed: u64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "sampling fraction must be in (0, 1]");
        let mut rng = SmallRng::seed_from_u64(seed);
        let target = ((table.num_rows() as f64 * fraction).round() as usize)
            .clamp(1, table.num_rows().max(1));
        // Reservoir-free selection: sort a random subset of indices and gather.
        let mut picked: Vec<usize> = Vec::with_capacity(target);
        for row in 0..table.num_rows() {
            let remaining_needed = target - picked.len();
            let remaining_rows = table.num_rows() - row;
            if remaining_needed == 0 {
                break;
            }
            if rng.gen_range(0..remaining_rows) < remaining_needed {
                picked.push(row);
            }
        }
        let columns = table
            .columns()
            .iter()
            .map(|c| {
                let data: Vec<u32> = picked.iter().map(|&r| c.id_at(r)).collect();
                duet_data::Column::from_encoded(c.name().to_string(), c.dictionary().to_vec(), data)
            })
            .collect();
        let sample = Table::new(format!("{}_sample", table.name()), columns);
        let scale = table.num_rows() as f64 / sample.num_rows().max(1) as f64;
        Self { sample, scale, name: "sampling".into() }
    }

    /// Number of rows kept in the sample.
    pub fn sample_rows(&self) -> usize {
        self.sample.num_rows()
    }
}

impl CardinalityEstimator for SamplingEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&mut self, query: &Query) -> f64 {
        exact_cardinality(&self.sample, query) as f64 * self.scale
    }

    fn size_bytes(&self) -> usize {
        self.sample.num_cells() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_data::datasets::census_like;
    use duet_data::Value;
    use duet_query::{PredOp, WorkloadSpec};

    #[test]
    fn sample_size_matches_fraction() {
        let t = census_like(2_000, 1);
        let est = SamplingEstimator::new(&t, 0.05, 7);
        assert!((est.sample_rows() as i64 - 100).abs() <= 1);
        assert!(est.size_bytes() > 0);
    }

    #[test]
    fn unconstrained_query_estimates_full_table() {
        let t = census_like(1_000, 2);
        let mut est = SamplingEstimator::new(&t, 0.1, 3);
        let e = est.estimate(&Query::all());
        assert!((e - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn large_predicates_are_estimated_reasonably() {
        let t = census_like(5_000, 3);
        let mut est = SamplingEstimator::new(&t, 0.2, 4);
        // A predicate that keeps roughly half the domain of column 0.
        let q = Query::all().and(0, PredOp::Le, Value::Int(36));
        let truth = duet_query::exact_cardinality(&t, &q) as f64;
        let e = est.estimate(&q);
        assert!(e > 0.0);
        assert!((e - truth).abs() / truth.max(1.0) < 0.25, "estimate {e} vs truth {truth}");
    }

    #[test]
    fn deterministic_given_seed() {
        let t = census_like(1_000, 5);
        let mut a = SamplingEstimator::new(&t, 0.1, 9);
        let mut b = SamplingEstimator::new(&t, 0.1, 9);
        let workload = WorkloadSpec::random(&t, 20, 11).generate(&t);
        for q in &workload {
            assert_eq!(a.estimate(q), b.estimate(q));
        }
    }

    #[test]
    #[should_panic(expected = "sampling fraction")]
    fn zero_fraction_rejected() {
        let t = census_like(100, 6);
        let _ = SamplingEstimator::new(&t, 0.0, 1);
    }
}
