//! # duet-baselines
//!
//! The cardinality estimators the Duet paper evaluates against, all
//! implementing [`duet_query::CardinalityEstimator`]:
//!
//! | Estimator | Class | Module |
//! |---|---|---|
//! | Sampling | traditional (uniform row sample) | [`sampling`] |
//! | Independence | traditional (attribute-value independence) | [`independence`] |
//! | MHist | traditional (multi-dimensional histogram) | [`mhist`] |
//! | MSCN-lite | query-driven (MLP regression with sample bitmaps) | [`mscn`] |
//! | DeepDB-lite | data-driven (sum-product network) | [`deepdb`] |
//! | Naru | data-driven (autoregressive + progressive sampling) | [`naru`] |
//! | UAE | hybrid (Naru + differentiable query feedback) | [`uae`] |
//!
//! Each module documents where its implementation simplifies the original
//! system; the simplifications preserve the qualitative behaviour the paper's
//! comparison relies on (cost model, independence assumptions, workload-drift
//! sensitivity, sampling non-determinism).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod deepdb;
pub mod independence;
pub mod mhist;
pub mod mscn;
pub mod naru;
pub mod sampling;
pub mod uae;

pub use deepdb::{DeepDbConfig, DeepDbEstimator};
pub use independence::IndependenceEstimator;
pub use mhist::MHist;
pub use mscn::{MscnConfig, MscnEstimator};
pub use naru::{NaruConfig, NaruEpochStats, NaruEstimator};
pub use sampling::SamplingEstimator;
pub use uae::{UaeConfig, UaeEpochStats, UaeEstimator};
