//! The attribute-value-independence estimator ("Indep" in Table II): the
//! selectivity of a conjunction is the product of each column's marginal
//! selectivity, computed exactly from per-column value counts.

use duet_data::Table;
use duet_query::{CardinalityEstimator, Query};

/// Per-column marginal-frequency estimator with the independence assumption.
#[derive(Debug, Clone)]
pub struct IndependenceEstimator {
    /// Cumulative counts per column: `cum[c][i]` = number of rows with value
    /// id `< i` in column `c` (so interval mass is a difference of two
    /// lookups).
    cumulative: Vec<Vec<u64>>,
    num_rows: usize,
    schema: Table,
    name: String,
}

impl IndependenceEstimator {
    /// Build the estimator from exact per-column statistics.
    pub fn new(table: &Table) -> Self {
        let cumulative = table
            .columns()
            .iter()
            .map(|c| {
                let counts = c.value_counts();
                let mut cum = Vec::with_capacity(counts.len() + 1);
                let mut acc = 0u64;
                cum.push(0);
                for count in counts {
                    acc += count;
                    cum.push(acc);
                }
                cum
            })
            .collect();
        Self {
            cumulative,
            num_rows: table.num_rows(),
            schema: table.schema_only(),
            name: "indep".into(),
        }
    }

    /// Marginal selectivity of the half-open id interval `[lo, hi)` on column
    /// `col`.
    pub fn interval_selectivity(&self, col: usize, lo: u32, hi: u32) -> f64 {
        if lo >= hi || self.num_rows == 0 {
            return 0.0;
        }
        let cum = &self.cumulative[col];
        let hi = (hi as usize).min(cum.len() - 1);
        let lo = (lo as usize).min(hi);
        (cum[hi] - cum[lo]) as f64 / self.num_rows as f64
    }
}

impl CardinalityEstimator for IndependenceEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&mut self, query: &Query) -> f64 {
        let intervals = query.column_intervals(&self.schema);
        let mut selectivity = 1.0f64;
        for &col in &query.constrained_columns() {
            let (lo, hi) = intervals[col];
            selectivity *= self.interval_selectivity(col, lo, hi);
            if selectivity == 0.0 {
                break;
            }
        }
        selectivity * self.num_rows as f64
    }

    fn size_bytes(&self) -> usize {
        self.cumulative.iter().map(|c| c.len() * 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_data::datasets::census_like;
    use duet_data::{TableBuilder, Value};
    use duet_query::{exact_cardinality, PredOp};

    #[test]
    fn single_column_queries_are_exact() {
        let t = census_like(2_000, 1);
        let mut est = IndependenceEstimator::new(&t);
        for lit in [5i64, 20, 40] {
            let q = Query::all().and(0, PredOp::Le, Value::Int(lit));
            let truth = exact_cardinality(&t, &q) as f64;
            let e = est.estimate(&q);
            assert!((e - truth).abs() < 1e-6, "single-column estimate must be exact");
        }
    }

    #[test]
    fn correlated_columns_break_the_assumption() {
        // Two identical columns: P(a=x AND b=x) = P(a=x), but independence
        // estimates P(a=x)^2.
        let mut b = TableBuilder::new("t", vec!["a".into(), "b".into()]);
        for i in 0..100 {
            let v = Value::Int(i % 10);
            b.push_row(vec![v.clone(), v]);
        }
        let t = b.build();
        let mut est = IndependenceEstimator::new(&t);
        let q = Query::all().and(0, PredOp::Eq, Value::Int(3)).and(1, PredOp::Eq, Value::Int(3));
        let truth = exact_cardinality(&t, &q) as f64; // 10
        let e = est.estimate(&q); // 100 * 0.1 * 0.1 = 1
        assert!(e < truth, "independence should underestimate on correlated data");
    }

    #[test]
    fn unconstrained_and_contradictory_queries() {
        let t = census_like(500, 2);
        let mut est = IndependenceEstimator::new(&t);
        assert_eq!(est.estimate(&Query::all()), 500.0);
        let contradiction =
            Query::all().and(0, PredOp::Lt, Value::Int(1)).and(0, PredOp::Gt, Value::Int(60));
        assert_eq!(est.estimate(&contradiction), 0.0);
    }

    #[test]
    fn reports_size() {
        let t = census_like(500, 3);
        let est = IndependenceEstimator::new(&t);
        assert!(est.size_bytes() > 0);
    }
}
