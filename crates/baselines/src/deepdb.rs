//! DeepDB-lite: a sum-product network (SPN) over the table, in the spirit of
//! Hilprecht et al.'s Relational SPNs.
//!
//! Structure learning follows the classic recursive scheme:
//!
//! * **Product nodes** split the column set into groups whose pairwise
//!   correlation (on value ids) is below a threshold — the conditional
//!   independence assumption the Duet paper calls out as DeepDB's accuracy
//!   limiter;
//! * **Sum nodes** split the row set into two clusters (a lightweight
//!   1-dimensional k-means on the most-spread column) with weights
//!   proportional to the cluster sizes;
//! * **Leaf nodes** store a per-column histogram over value ids.
//!
//! Estimation computes the probability of the query box bottom-up: leaves sum
//! histogram mass inside the column's id interval, product nodes multiply,
//! sum nodes take the weighted average.

use duet_data::{id_correlation, Table};
use duet_query::{CardinalityEstimator, Query};

/// Hyper-parameters of the DeepDB-lite SPN.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepDbConfig {
    /// Minimum number of rows before a node becomes a leaf/product of leaves.
    pub min_rows: usize,
    /// Absolute correlation below which two columns are considered
    /// independent.
    pub independence_threshold: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
}

impl DeepDbConfig {
    /// Defaults comparable to DeepDB's RSPN settings.
    pub fn default_config() -> Self {
        Self { min_rows: 512, independence_threshold: 0.3, max_depth: 12 }
    }
}

impl Default for DeepDbConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// One SPN node.
#[derive(Debug, Clone)]
enum SpnNode {
    /// Weighted mixture over row clusters.
    Sum { children: Vec<(f64, SpnNode)> },
    /// Product over independent column groups.
    Product { children: Vec<SpnNode> },
    /// Histogram leaf for a single column.
    Leaf {
        /// The column this leaf models.
        column: usize,
        /// Probability mass per value id.
        histogram: Vec<f64>,
    },
}

/// The DeepDB-lite estimator.
#[derive(Debug, Clone)]
pub struct DeepDbEstimator {
    root: SpnNode,
    schema: Table,
    num_rows: usize,
    name: String,
}

impl DeepDbEstimator {
    /// Learn an SPN over `table`.
    pub fn build(table: &Table, config: &DeepDbConfig) -> Self {
        let rows: Vec<u32> = (0..table.num_rows() as u32).collect();
        let cols: Vec<usize> = (0..table.num_columns()).collect();
        let root = build_node(table, &rows, &cols, config, 0);
        Self {
            root,
            schema: table.schema_only(),
            num_rows: table.num_rows(),
            name: "deepdb".into(),
        }
    }

    /// Number of nodes in the learned SPN (structure statistic).
    pub fn num_nodes(&self) -> usize {
        count_nodes(&self.root)
    }
}

fn count_nodes(node: &SpnNode) -> usize {
    match node {
        SpnNode::Leaf { .. } => 1,
        SpnNode::Product { children } => 1 + children.iter().map(count_nodes).sum::<usize>(),
        SpnNode::Sum { children } => {
            1 + children.iter().map(|(_, c)| count_nodes(c)).sum::<usize>()
        }
    }
}

fn build_node(
    table: &Table,
    rows: &[u32],
    cols: &[usize],
    config: &DeepDbConfig,
    depth: usize,
) -> SpnNode {
    if cols.len() == 1 {
        return make_leaf(table, rows, cols[0]);
    }
    // Stop conditions: few rows or deep tree => assume full independence.
    if rows.len() <= config.min_rows || depth >= config.max_depth {
        return SpnNode::Product {
            children: cols.iter().map(|&c| make_leaf(table, rows, c)).collect(),
        };
    }

    // Try a column split into (approximately) independent groups.
    if let Some((group_a, group_b)) =
        split_columns(table, rows, cols, config.independence_threshold)
    {
        return SpnNode::Product {
            children: vec![
                build_node(table, rows, &group_a, config, depth + 1),
                build_node(table, rows, &group_b, config, depth + 1),
            ],
        };
    }

    // Otherwise split the rows into two clusters on the most-spread column.
    match split_rows(table, rows, cols) {
        Some((left, right)) => {
            let total = rows.len() as f64;
            SpnNode::Sum {
                children: vec![
                    (left.len() as f64 / total, build_node(table, &left, cols, config, depth + 1)),
                    (
                        right.len() as f64 / total,
                        build_node(table, &right, cols, config, depth + 1),
                    ),
                ],
            }
        }
        None => {
            SpnNode::Product { children: cols.iter().map(|&c| make_leaf(table, rows, c)).collect() }
        }
    }
}

fn make_leaf(table: &Table, rows: &[u32], column: usize) -> SpnNode {
    let ndv = table.column(column).ndv();
    let mut histogram = vec![0.0f64; ndv];
    let data = table.column(column).data();
    for &r in rows {
        histogram[data[r as usize] as usize] += 1.0;
    }
    let total: f64 = rows.len().max(1) as f64;
    for h in &mut histogram {
        *h /= total;
    }
    SpnNode::Leaf { column, histogram }
}

/// Group columns greedily: start with the first column, add every column that
/// is correlated with the group, and split the rest off — succeed only if both
/// sides are non-empty.
fn split_columns(
    table: &Table,
    rows: &[u32],
    cols: &[usize],
    threshold: f64,
) -> Option<(Vec<usize>, Vec<usize>)> {
    // Correlations are computed on a row subsample to keep structure learning
    // cheap on large nodes.
    let sample: Vec<u32> = if rows.len() > 2_000 {
        rows.iter().step_by(rows.len() / 2_000).cloned().collect()
    } else {
        rows.to_vec()
    };
    let sub_columns: Vec<duet_data::Column> = cols
        .iter()
        .map(|&c| {
            let col = table.column(c);
            let data: Vec<u32> = sample.iter().map(|&r| col.id_at(r as usize)).collect();
            duet_data::Column::from_encoded(col.name().to_string(), col.dictionary().to_vec(), data)
        })
        .collect();

    let mut in_group = vec![false; cols.len()];
    in_group[0] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for i in 1..cols.len() {
            if in_group[i] {
                continue;
            }
            let correlated = (0..cols.len()).any(|j| {
                in_group[j] && id_correlation(&sub_columns[i], &sub_columns[j]).abs() > threshold
            });
            if correlated {
                in_group[i] = true;
                changed = true;
            }
        }
    }
    let group_a: Vec<usize> =
        cols.iter().zip(&in_group).filter(|(_, &g)| g).map(|(&c, _)| c).collect();
    let group_b: Vec<usize> =
        cols.iter().zip(&in_group).filter(|(_, &g)| !g).map(|(&c, _)| c).collect();
    if group_b.is_empty() {
        None
    } else {
        Some((group_a, group_b))
    }
}

/// Two-way row clustering: pick the column with the largest id spread and
/// split its rows at the mean id.
fn split_rows(table: &Table, rows: &[u32], cols: &[usize]) -> Option<(Vec<u32>, Vec<u32>)> {
    let mut best: Option<(usize, f64)> = None;
    for &c in cols {
        let data = table.column(c).data();
        let mut min = u32::MAX;
        let mut max = 0u32;
        for &r in rows {
            let id = data[r as usize];
            min = min.min(id);
            max = max.max(id);
        }
        let spread = max.saturating_sub(min) as f64;
        if best.map(|(_, s)| spread > s).unwrap_or(true) {
            best = Some((c, spread));
        }
    }
    let (col, spread) = best?;
    if spread < 1.0 {
        return None;
    }
    let data = table.column(col).data();
    let mean: f64 = rows.iter().map(|&r| data[r as usize] as f64).sum::<f64>() / rows.len() as f64;
    let (mut left, mut right) = (Vec::new(), Vec::new());
    for &r in rows {
        if (data[r as usize] as f64) < mean {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    if left.is_empty() || right.is_empty() {
        None
    } else {
        Some((left, right))
    }
}

/// Probability of the query box under a node.
fn node_probability(node: &SpnNode, intervals: &[(u32, u32)]) -> f64 {
    match node {
        SpnNode::Leaf { column, histogram } => {
            let (lo, hi) = intervals[*column];
            if lo >= hi {
                return 0.0;
            }
            let hi = (hi as usize).min(histogram.len());
            histogram[lo as usize..hi].iter().sum()
        }
        SpnNode::Product { children } => {
            children.iter().map(|c| node_probability(c, intervals)).product()
        }
        SpnNode::Sum { children } => {
            children.iter().map(|(w, c)| w * node_probability(c, intervals)).sum()
        }
    }
}

impl CardinalityEstimator for DeepDbEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&mut self, query: &Query) -> f64 {
        let intervals = query.column_intervals(&self.schema);
        let p = node_probability(&self.root, &intervals).clamp(0.0, 1.0);
        p * self.num_rows as f64
    }

    fn size_bytes(&self) -> usize {
        fn node_size(node: &SpnNode) -> usize {
            match node {
                SpnNode::Leaf { histogram, .. } => histogram.len() * 8 + 16,
                SpnNode::Product { children } => 16 + children.iter().map(node_size).sum::<usize>(),
                SpnNode::Sum { children } => {
                    16 + children.iter().map(|(_, c)| 8 + node_size(c)).sum::<usize>()
                }
            }
        }
        node_size(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_data::datasets::census_like;
    use duet_data::Value;
    use duet_query::{exact_cardinality, q_error, PredOp, QErrorSummary, WorkloadSpec};

    #[test]
    fn builds_a_non_trivial_structure() {
        let t = census_like(3_000, 81);
        let spn = DeepDbEstimator::build(&t, &DeepDbConfig::default_config());
        assert!(spn.num_nodes() > 14, "expected more than one node per column");
        assert!(spn.size_bytes() > 0);
    }

    #[test]
    fn unconstrained_and_single_column_queries() {
        let t = census_like(2_000, 82);
        let mut spn = DeepDbEstimator::build(&t, &DeepDbConfig::default_config());
        assert!((spn.estimate(&Query::all()) - 2_000.0).abs() < 1.0);
        let q = Query::all().and(0, PredOp::Le, Value::Int(30));
        let truth = exact_cardinality(&t, &q) as f64;
        let e = spn.estimate(&q);
        assert!(
            q_error(e, truth) < 1.5,
            "single-column estimate should be near-exact: {e} vs {truth}"
        );
    }

    #[test]
    fn multi_column_accuracy_is_reasonable() {
        let t = census_like(4_000, 83);
        let mut spn = DeepDbEstimator::build(&t, &DeepDbConfig::default_config());
        let queries = WorkloadSpec::random(&t, 60, 7).generate(&t);
        let errors: Vec<f64> = queries
            .iter()
            .map(|q| q_error(spn.estimate(q), exact_cardinality(&t, q) as f64))
            .collect();
        let s = QErrorSummary::from_errors(&errors);
        assert!(s.median < 15.0, "DeepDB-lite median Q-Error too high: {s:?}");
    }

    #[test]
    fn estimates_are_bounded() {
        let t = census_like(1_000, 84);
        let mut spn = DeepDbEstimator::build(&t, &DeepDbConfig::default_config());
        for q in WorkloadSpec::random(&t, 40, 11).generate(&t) {
            let e = spn.estimate(&q);
            assert!((0.0..=1_000.0).contains(&e));
        }
    }
}
