//! UAE (Wu & Cong, SIGMOD 2021): Naru's autoregressive model trained
//! *hybridly* — the unsupervised tuple likelihood plus a supervised Q-Error
//! loss whose gradient flows through a differentiable version of progressive
//! sampling.
//!
//! Reproduction note: the original uses the Gumbel-Softmax trick to keep the
//! whole sampled chain differentiable, at the cost of tracking gradients for
//! `batch × samples` network evaluations (the memory blow-up the Duet paper
//! criticizes). Here the chain is relaxed more coarsely: the conditioning
//! values of earlier columns are sampled without gradient (straight-through)
//! and the supervised gradient flows through the final constrained column's
//! forward pass. This keeps the properties the paper's comparison relies on —
//! per-query training cost proportional to `samples × constrained columns`,
//! progressive-sampling inference identical to Naru (O(n), non-deterministic)
//! — while remaining tractable on CPU. The deviation is documented in
//! DESIGN.md.

use crate::naru::{train_value_model, NaruConfig, NaruEpochStats, NaruEstimator, ValueEncoder};
use duet_data::Table;
use duet_nn::{softmax_into, Adam, GradClip, Layer, Made, Matrix};
use duet_query::{CardinalityEstimator, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Hyper-parameters of the UAE baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct UaeConfig {
    /// The shared Naru architecture / training parameters.
    pub naru: NaruConfig,
    /// Weight of the supervised Q-Error loss.
    pub query_weight: f64,
    /// Number of samples used for the differentiable estimate during
    /// training (the paper's authors had to shrink this to avoid
    /// out-of-memory; it is the main driver of UAE's training cost).
    pub train_samples: usize,
    /// Queries per supervised mini-batch.
    pub query_batch_size: usize,
}

impl UaeConfig {
    /// Small configuration for tests.
    pub fn small() -> Self {
        Self {
            naru: NaruConfig::small(),
            query_weight: 1.0,
            train_samples: 32,
            query_batch_size: 16,
        }
    }

    /// Configuration mirroring the paper's UAE settings (reduced sample count,
    /// as in the paper's RTX3080 evaluation).
    pub fn paper(naru: NaruConfig) -> Self {
        Self { naru, query_weight: 1.0, train_samples: 200, query_batch_size: 64 }
    }
}

/// Per-epoch statistics of UAE training.
#[derive(Debug, Clone, PartialEq)]
pub struct UaeEpochStats {
    /// Shared unsupervised statistics.
    pub data: NaruEpochStats,
    /// Mean supervised loss `log2(QError + 1)`.
    pub query_loss: f64,
}

/// The UAE estimator: a Naru model refined with supervised query feedback.
#[derive(Debug, Clone)]
pub struct UaeEstimator {
    inner: NaruEstimator,
}

impl UaeEstimator {
    /// Hybrid training on the table plus a labelled workload.
    pub fn train(
        table: &Table,
        queries: &[Query],
        cardinalities: &[u64],
        config: &UaeConfig,
        seed: u64,
    ) -> Self {
        Self::train_with_stats(table, queries, cardinalities, config, seed, |_| {})
    }

    /// Hybrid training with per-epoch statistics.
    pub fn train_with_stats(
        table: &Table,
        queries: &[Query],
        cardinalities: &[u64],
        config: &UaeConfig,
        seed: u64,
        mut on_epoch: impl FnMut(&UaeEpochStats),
    ) -> Self {
        assert_eq!(queries.len(), cardinalities.len(), "labels required for every query");
        // Phase 1: the unsupervised pass is identical to Naru's.
        let mut data_stats: Vec<NaruEpochStats> = Vec::new();
        let (mut made, encoder) =
            train_value_model(table, &config.naru, seed, &mut |s, _, _| data_stats.push(s.clone()));

        // Phase 2: supervised refinement with the (relaxed) differentiable
        // progressive estimate. One refinement sweep per training epoch keeps
        // the cost model comparable to joint training.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5151);
        let mut adam = Adam::new(config.naru.learning_rate).with_clip(GradClip::Value(8.0));
        let prepared: Vec<PreparedQuery> = queries
            .iter()
            .zip(cardinalities)
            .map(|(q, &card)| (q.column_intervals(table), q.constrained_columns(), card as f64))
            .collect();
        let num_rows = table.num_rows() as f64;

        for (epoch, data) in data_stats.iter().enumerate() {
            let started = Instant::now();
            let mut query_loss_sum = 0.0f64;
            let mut batches = 0usize;
            let mut cursor = 0usize;
            let steps = (prepared.len() / config.query_batch_size.max(1)).clamp(1, 32);
            for _ in 0..steps {
                let mut batch = Vec::with_capacity(config.query_batch_size);
                for _ in 0..config.query_batch_size.min(prepared.len()) {
                    batch.push(&prepared[cursor % prepared.len()]);
                    cursor += 1;
                }
                query_loss_sum += supervised_step(
                    &mut made,
                    &encoder,
                    &batch,
                    num_rows,
                    config.train_samples,
                    config.query_weight,
                    &mut adam,
                    &mut rng,
                );
                batches += 1;
            }
            let mut stats = UaeEpochStats {
                data: data.clone(),
                query_loss: query_loss_sum / batches.max(1) as f64,
            };
            stats.data.seconds += started.elapsed().as_secs_f64();
            stats.data.epoch = epoch;
            on_epoch(&stats);
        }

        let inner =
            NaruEstimator::from_parts(made, encoder, table, config.naru.num_samples, seed, "uae");
        Self { inner }
    }

    /// Number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.inner.num_parameters()
    }

    /// Re-seed the progressive-sampling RNG.
    pub fn reseed(&mut self, seed: u64) {
        self.inner.reseed(seed);
    }

    /// Progressive-sampling estimation with phase breakdown (same shape as
    /// [`NaruEstimator::estimate_with_breakdown`]).
    pub fn estimate_with_breakdown(
        &mut self,
        query: &Query,
    ) -> (f64, std::time::Duration, std::time::Duration, usize) {
        self.inner.estimate_with_breakdown(query)
    }
}

/// A query prepared for the supervised pass: its column id intervals, its
/// constrained columns, and the true cardinality.
type PreparedQuery = (Vec<(u32, u32)>, Vec<usize>, f64);

/// One supervised optimizer step over a query mini-batch; returns the mean
/// `log2(QError + 1)` loss.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // `sample` indexes weights, logits and input rows in lockstep
fn supervised_step(
    made: &mut Made,
    encoder: &ValueEncoder,
    batch: &[&PreparedQuery],
    num_rows: f64,
    samples: usize,
    query_weight: f64,
    adam: &mut Adam,
    rng: &mut SmallRng,
) -> f64 {
    made.zero_grad();
    let mut loss_sum = 0.0f64;
    let ln2 = std::f64::consts::LN_2;
    let sizes = encoder.output_sizes();
    // Scratch softmax staging, reused across samples/columns/queries: the
    // prefix loop stages one column's probabilities at a time, the final
    // column stages all samples' probabilities flat (stride `size`).
    let mut probs: Vec<f32> = Vec::new();
    let mut final_probs: Vec<f32> = Vec::new();

    for (intervals, constrained, actual) in batch.iter().map(|p| (&p.0, &p.1, p.2)) {
        if constrained.is_empty() {
            continue;
        }
        if constrained.iter().any(|&c| intervals[c].0 >= intervals[c].1) {
            continue;
        }
        // Progressive sampling without gradient for all but the last
        // constrained column.
        let s = samples;
        let width = encoder.total_width();
        let mut input = Matrix::zeros(s, width);
        let mut weights = vec![1.0f64; s];
        let (&last_col, prefix) = constrained.split_last().expect("non-empty");
        for &col in prefix {
            let logits = made.forward_inference(&input);
            let (lo, hi) = intervals[col];
            let out_off: usize = sizes[..col].iter().sum();
            let size = sizes[col];
            let in_off = encoder.block_offset(col);
            let block_w = encoder.block_width(col);
            probs.clear();
            probs.resize(size, 0.0);
            for sample in 0..s {
                if weights[sample] == 0.0 {
                    continue;
                }
                softmax_into(&logits.row(sample)[out_off..out_off + size], &mut probs);
                let mass: f64 = probs[lo as usize..hi as usize].iter().map(|&p| p as f64).sum();
                weights[sample] *= mass;
                if mass <= 0.0 {
                    weights[sample] = 0.0;
                    continue;
                }
                let u: f64 = rng.gen::<f64>() * mass;
                let mut acc = 0.0;
                let mut chosen = lo;
                for k in lo..hi {
                    acc += probs[k as usize] as f64;
                    if acc >= u {
                        chosen = k;
                        break;
                    }
                }
                let row = input.row_mut(sample);
                encoder.encode_value_into(col, chosen, &mut row[in_off..in_off + block_w]);
            }
        }

        // Final column: tracked forward pass; the supervised gradient flows
        // through its logits.
        let logits = made.forward(&input);
        let (lo, hi) = intervals[last_col];
        let out_off: usize = sizes[..last_col].iter().sum();
        let size = sizes[last_col];
        // Per-sample probabilities staged flat (stride `size`) for the
        // gradient pass — no per-sample heap vectors.
        final_probs.clear();
        final_probs.resize(s * size, 0.0);
        let mut per_sample_mass: Vec<f64> = Vec::with_capacity(s);
        let mut est_sel = 0.0f64;
        for sample in 0..s {
            let sample_probs = &mut final_probs[sample * size..(sample + 1) * size];
            softmax_into(&logits.row(sample)[out_off..out_off + size], sample_probs);
            let mass: f64 = sample_probs[lo as usize..hi as usize].iter().map(|&p| p as f64).sum();
            est_sel += weights[sample] * mass;
            per_sample_mass.push(mass);
        }
        est_sel /= s as f64;
        let est = (est_sel * num_rows).max(1.0);
        let actual = actual.max(1.0);
        let q = if est >= actual { est / actual } else { actual / est };
        loss_sum += (q + 1.0).log2();

        let dl_dq = 1.0 / ((q + 1.0) * ln2);
        let dq_dest = if est >= actual { 1.0 / actual } else { -actual / (est * est) };
        let dl_dsel = dl_dq * dq_dest * num_rows * query_weight / batch.len() as f64;

        let mut grad_logits = Matrix::zeros(s, logits.cols());
        for sample in 0..s {
            let dl_dmass = dl_dsel * weights[sample] / s as f64;
            if dl_dmass == 0.0 {
                continue;
            }
            let probs = &final_probs[sample * size..(sample + 1) * size];
            let mass = per_sample_mass[sample];
            let grow = grad_logits.row_mut(sample);
            for (k, &p) in probs.iter().enumerate() {
                let in_range = if (k as u32) >= lo && (k as u32) < hi { 1.0 } else { 0.0 };
                grow[out_off + k] = (p as f64 * (in_range - mass) * dl_dmass) as f32;
            }
        }
        let _ = made.backward(&grad_logits);
    }

    adam.step(made);
    loss_sum / batch.len().max(1) as f64
}

impl CardinalityEstimator for UaeEstimator {
    fn name(&self) -> &str {
        "uae"
    }

    fn estimate(&mut self, query: &Query) -> f64 {
        self.inner.estimate(query)
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_data::datasets::census_like;
    use duet_query::{exact_cardinality, q_error, QErrorSummary, WorkloadSpec};

    fn trained() -> (Table, UaeEstimator) {
        let table = census_like(800, 61);
        let spec = WorkloadSpec::in_workload(&table, 64, 42);
        let queries = spec.generate(&table);
        let cards: Vec<u64> = queries.iter().map(|q| exact_cardinality(&table, q)).collect();
        let mut cfg = UaeConfig::small();
        cfg.naru = cfg.naru.with_epochs(2).with_samples(64);
        cfg.train_samples = 16;
        let uae = UaeEstimator::train(&table, &queries, &cards, &cfg, 9);
        (table, uae)
    }

    #[test]
    fn trains_and_estimates_reasonably() {
        let (table, mut uae) = trained();
        let queries = WorkloadSpec::random(&table, 30, 13).generate(&table);
        let errors: Vec<f64> = queries
            .iter()
            .map(|q| q_error(uae.estimate(q), exact_cardinality(&table, q) as f64))
            .collect();
        let s = QErrorSummary::from_errors(&errors);
        assert!(s.median < 20.0, "UAE median Q-Error too high: {s:?}");
        assert!(uae.size_bytes() > 0);
        assert_eq!(uae.name(), "uae");
    }

    #[test]
    fn epoch_stats_include_query_loss() {
        let table = census_like(400, 62);
        let queries = WorkloadSpec::in_workload(&table, 32, 42).generate(&table);
        let cards: Vec<u64> = queries.iter().map(|q| exact_cardinality(&table, q)).collect();
        let mut cfg = UaeConfig::small();
        cfg.naru = cfg.naru.with_epochs(2).with_samples(32);
        cfg.train_samples = 8;
        let mut losses = Vec::new();
        let _ = UaeEstimator::train_with_stats(&table, &queries, &cards, &cfg, 3, |s| {
            losses.push(s.query_loss);
        });
        assert_eq!(losses.len(), 2);
        assert!(losses.iter().all(|&l| l >= 0.0));
    }

    #[test]
    #[should_panic(expected = "labels required")]
    fn mismatched_labels_rejected() {
        let table = census_like(100, 63);
        let queries = WorkloadSpec::random(&table, 4, 1).generate(&table);
        let _ = UaeEstimator::train(&table, &queries, &[1, 2], &UaeConfig::small(), 1);
    }
}
